//! Whole-system snapshots for offline analysis.
//!
//! The paper's adaptation figures (5a, 5b, 6 and the §3 summaries) measure
//! global properties of the overlay and tree at instants in time. These
//! helpers extract the graphs from a running [`Sim`] so the analysis crate
//! can compute degrees, latencies, components and diameters.

use std::time::Duration;

use gocast_sim::{LatencyModel, NodeId, Recorder, Sim};

use crate::node::GoCastNode;
use crate::types::{GoCastEvent, LinkKind, ProtocolCounters};

/// A point-in-time view of the overlay and tree.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Number of nodes.
    pub n: usize,
    /// Liveness per node.
    pub alive: Vec<bool>,
    /// Undirected overlay edges `(a, b, kind)` with `a < b`. An edge is
    /// included if either endpoint has it; the kind is the first
    /// endpoint's classification.
    pub overlay_edges: Vec<(u32, u32, LinkKind)>,
    /// Undirected tree edges `(child, parent)` from parent pointers.
    pub tree_edges: Vec<(u32, u32)>,
    /// Per-node protocol activity counters, indexed by node id.
    pub counters: Vec<ProtocolCounters>,
}

/// Captures a [`Snapshot`] from a simulation of GoCast nodes.
pub fn snapshot<R: Recorder<GoCastEvent>>(sim: &Sim<GoCastNode, R>) -> Snapshot {
    let n = sim.len();
    let alive: Vec<bool> = (0..n)
        .map(|i| sim.is_alive(NodeId::new(i as u32)))
        .collect();

    let mut overlay = std::collections::BTreeMap::new();
    let mut tree_edges = Vec::new();
    let mut counters = vec![ProtocolCounters::default(); n];
    for (id, node) in sim.iter_nodes() {
        counters[id.index()] = *node.counters();
        for (peer, kind, _) in node.overlay_links() {
            let key = if id < peer {
                (id.as_u32(), peer.as_u32())
            } else {
                (peer.as_u32(), id.as_u32())
            };
            overlay.entry(key).or_insert(kind);
        }
        if let Some(p) = node.tree_parent() {
            tree_edges.push((id.as_u32(), p.as_u32()));
        }
    }
    Snapshot {
        n,
        alive,
        overlay_edges: overlay.into_iter().map(|((a, b), k)| (a, b, k)).collect(),
        tree_edges,
        counters,
    }
}

impl Snapshot {
    /// Overlay adjacency lists over all nodes (dead nodes keep their last
    /// links; filter by [`Snapshot::alive`] for post-failure analysis).
    pub fn overlay_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b, _) in &self.overlay_edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        adj
    }

    /// Overlay adjacency restricted to alive nodes (dead endpoints and
    /// their edges removed).
    pub fn live_overlay_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b, _) in &self.overlay_edges {
            if self.alive[a as usize] && self.alive[b as usize] {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        adj
    }

    /// Total node degrees (random + nearby) per node.
    pub fn degrees(&self) -> Vec<usize> {
        self.overlay_adjacency().iter().map(Vec::len).collect()
    }

    /// Mean true one-way latency across overlay links.
    pub fn mean_overlay_latency(&self, net: &dyn LatencyModel) -> Duration {
        Self::mean_latency(self.overlay_edges.iter().map(|&(a, b, _)| (a, b)), net)
    }

    /// Mean true one-way latency across overlay links of one kind.
    pub fn mean_overlay_latency_of(&self, kind: LinkKind, net: &dyn LatencyModel) -> Duration {
        Self::mean_latency(
            self.overlay_edges
                .iter()
                .filter(|&&(_, _, k)| k == kind)
                .map(|&(a, b, _)| (a, b)),
            net,
        )
    }

    /// Mean true one-way latency across tree links.
    pub fn mean_tree_latency(&self, net: &dyn LatencyModel) -> Duration {
        Self::mean_latency(self.tree_edges.iter().copied(), net)
    }

    fn mean_latency<I: Iterator<Item = (u32, u32)>>(edges: I, net: &dyn LatencyModel) -> Duration {
        let mut sum = Duration::ZERO;
        let mut count = 0u32;
        for (a, b) in edges {
            sum += net.one_way(NodeId::new(a), NodeId::new(b));
            count += 1;
        }
        if count == 0 {
            Duration::ZERO
        } else {
            sum / count
        }
    }

    /// Number of overlay edges.
    pub fn overlay_edge_count(&self) -> usize {
        self.overlay_edges.len()
    }

    /// Number of tree edges (n-1 when the tree spans all nodes).
    pub fn tree_edge_count(&self) -> usize {
        self.tree_edges.len()
    }

    /// Sums every node's [`ProtocolCounters`] into one cluster-wide total.
    pub fn total_counters(&self) -> ProtocolCounters {
        let mut total = ProtocolCounters::default();
        for c in &self.counters {
            total.merge(c);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast_sim::FixedLatency;

    #[test]
    fn snapshot_statics_on_synthetic_graph() {
        // Construct a Snapshot by hand to exercise the graph helpers.
        let s = Snapshot {
            n: 4,
            alive: vec![true, true, false, true],
            overlay_edges: vec![
                (0, 1, LinkKind::Nearby),
                (1, 2, LinkKind::Random),
                (2, 3, LinkKind::Nearby),
            ],
            tree_edges: vec![(1, 0), (2, 1)],
            counters: vec![ProtocolCounters::default(); 4],
        };
        assert_eq!(s.degrees(), vec![1, 2, 2, 1]);
        assert_eq!(s.total_counters(), ProtocolCounters::default());
        let live = s.live_overlay_adjacency();
        assert_eq!(live[0], vec![1]);
        assert!(live[2].is_empty(), "dead node keeps no live edges");
        assert_eq!(s.overlay_edge_count(), 3);
        assert_eq!(s.tree_edge_count(), 2);

        let net = FixedLatency::new(4, Duration::from_millis(10));
        assert_eq!(s.mean_overlay_latency(&net), Duration::from_millis(10));
        assert_eq!(
            s.mean_overlay_latency_of(LinkKind::Random, &net),
            Duration::from_millis(10)
        );
        assert_eq!(s.mean_tree_latency(&net), Duration::from_millis(10));
    }

    #[test]
    fn empty_edges_mean_zero() {
        let s = Snapshot {
            n: 2,
            alive: vec![true, true],
            overlay_edges: vec![],
            tree_edges: vec![],
            counters: vec![],
        };
        let net = FixedLatency::new(2, Duration::from_millis(10));
        assert_eq!(s.mean_overlay_latency(&net), Duration::ZERO);
        assert_eq!(s.mean_tree_latency(&net), Duration::ZERO);
    }
}
