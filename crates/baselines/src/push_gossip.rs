//! Push-based gossip multicast (the paper's "gossip" and "no-wait gossip"
//! baselines, modelled on Bimodal Multicast [2]).
//!
//! Every gossip period `t`, a node sends a summary of recently received
//! message IDs to **one uniformly random node**; each message ID is
//! gossiped to `F` (the fanout) distinct random nodes, one per period. A
//! receiver that is missing a summarized message requests it from the
//! sender. In *no-wait* mode a node gossips a message's ID to `F` random
//! nodes immediately upon receiving it (gossip period effectively zero) —
//! the paper uses it to probe the speed limits of gossip multicast.
//!
//! Unlike GoCast, the baseline assumes full membership knowledge (as
//! Bimodal Multicast does) and is completely oblivious to network
//! topology.

use std::collections::HashMap;
use std::time::Duration;

use gocast::{DeliveryPath, GoCastCommand, GoCastEvent, MsgId};
use gocast_sim::{Ctx, NodeId, Protocol, SimTime, Stack, StackCaps, Timer, TrafficClass, Wire};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Timer kinds.
mod timers {
    pub const GOSSIP: u32 = 1;
    pub const GC: u32 = 2;
    pub const PULL_TIMEOUT: u32 = 3;
}

/// Configuration for the push-gossip baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PushGossipConfig {
    /// Gossip fanout `F`: how many random nodes hear each message ID.
    pub fanout: usize,
    /// Gossip period `t` (ignored in no-wait mode).
    pub gossip_period: Duration,
    /// No-wait mode: gossip immediately on reception instead of batching
    /// per period.
    pub no_wait: bool,
    /// Retry interval for unanswered pulls.
    pub pull_timeout: Duration,
    /// Message retention.
    pub gc_wait: Duration,
    /// Multicast payload size (bytes, accounting only).
    pub payload_size: u32,
}

impl Default for PushGossipConfig {
    fn default() -> Self {
        PushGossipConfig {
            fanout: 5,
            gossip_period: Duration::from_millis(100),
            no_wait: false,
            pull_timeout: Duration::from_secs(2),
            gc_wait: Duration::from_secs(120),
            payload_size: 1024,
        }
    }
}

impl PushGossipConfig {
    /// The paper's "no-wait gossip" variant.
    pub fn no_wait() -> Self {
        PushGossipConfig {
            no_wait: true,
            ..Default::default()
        }
    }

    /// Sets the fanout (builder style).
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }
}

/// Wire messages of the baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PushGossipMsg {
    /// Message-ID summary.
    Gossip {
        /// `(id, age in µs)` entries.
        ids: Vec<(MsgId, u64)>,
    },
    /// Request for missing messages.
    Pull {
        /// The missing IDs.
        ids: Vec<MsgId>,
    },
    /// A full payload.
    Data {
        /// Message identity.
        id: MsgId,
        /// Age at send (µs).
        age_us: u64,
        /// Payload bytes.
        size: u32,
    },
}

impl Wire for PushGossipMsg {
    fn wire_size(&self) -> u32 {
        28 + match self {
            PushGossipMsg::Gossip { ids } => 16 * ids.len() as u32,
            PushGossipMsg::Pull { ids } => 8 * ids.len() as u32,
            PushGossipMsg::Data { size, .. } => 16 + size,
        }
    }

    fn class(&self) -> TrafficClass {
        match self {
            PushGossipMsg::Gossip { .. } => TrafficClass::Gossip,
            PushGossipMsg::Pull { .. } => TrafficClass::Request,
            PushGossipMsg::Data { .. } => TrafficClass::Data,
        }
    }
}

#[derive(Debug, Clone)]
struct Stored {
    received_at: SimTime,
    age_at_receive_us: u64,
    /// How many more random nodes this ID must be gossiped to.
    gossips_remaining: usize,
    size: u32,
}

impl Stored {
    fn age_at(&self, now: SimTime) -> u64 {
        self.age_at_receive_us + now.saturating_since(self.received_at).as_micros() as u64
    }
}

#[derive(Debug, Clone)]
struct PendingPull {
    candidates: Vec<NodeId>,
    requested_from: Option<NodeId>,
}

/// A node running the push-gossip baseline.
#[derive(Debug)]
pub struct PushGossipNode {
    cfg: PushGossipConfig,
    id: NodeId,
    next_seq: u32,
    store: HashMap<MsgId, Stored>,
    /// IDs with gossip budget left, in reception order.
    active: Vec<MsgId>,
    pending: HashMap<MsgId, PendingPull>,
    /// How many gossip summaries mentioned each ID (the paper's "number of
    /// times that nodes receive the gossip containing the ID").
    hear_counts: HashMap<MsgId, u32>,
    delivered: u64,
    redundant: u64,
}

impl PushGossipNode {
    /// Creates a baseline node.
    pub fn new(id: NodeId, cfg: PushGossipConfig) -> Self {
        assert!(cfg.fanout > 0, "fanout must be positive");
        PushGossipNode {
            cfg,
            id,
            next_seq: 0,
            store: HashMap::new(),
            active: Vec::new(),
            pending: HashMap::new(),
            hear_counts: HashMap::new(),
            delivered: 0,
            redundant: 0,
        }
    }

    /// How many gossip summaries mentioned `id` at this node.
    pub fn times_heard(&self, id: MsgId) -> u32 {
        self.hear_counts.get(&id).copied().unwrap_or(0)
    }

    /// The largest hear count over all message IDs at this node.
    pub fn max_times_heard(&self) -> u32 {
        self.hear_counts.values().copied().max().unwrap_or(0)
    }

    /// Messages delivered to this node.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Redundant payload receptions.
    pub fn redundant_count(&self) -> u64 {
        self.redundant
    }

    /// Whether this node holds `id`.
    pub fn has_message(&self, id: MsgId) -> bool {
        self.store.contains_key(&id)
    }

    fn random_peer(&self, ctx: &mut Ctx<'_, Self>) -> Option<NodeId> {
        let n = ctx.node_count() as u32;
        if n < 2 {
            return None;
        }
        let mut peer = ctx.rng().gen_range(0..n - 1);
        if peer >= self.id.as_u32() {
            peer += 1;
        }
        Some(NodeId::new(peer))
    }

    fn admit(&mut self, ctx: &mut Ctx<'_, Self>, id: MsgId, age_us: u64, size: u32) {
        self.store.insert(
            id,
            Stored {
                received_at: ctx.now(),
                age_at_receive_us: age_us,
                gossips_remaining: self.cfg.fanout,
                size,
            },
        );
        if self.cfg.no_wait {
            // Gossip immediately to `fanout` random nodes.
            let age = age_us;
            for _ in 0..self.cfg.fanout {
                if let Some(peer) = self.random_peer(ctx) {
                    ctx.send(
                        peer,
                        PushGossipMsg::Gossip {
                            ids: vec![(id, age)],
                        },
                    );
                }
            }
            if let Some(s) = self.store.get_mut(&id) {
                s.gossips_remaining = 0;
            }
        } else {
            self.active.push(id);
        }
    }

    fn send_pull(&mut self, ctx: &mut Ctx<'_, Self>, id: MsgId) {
        let Some(p) = self.pending.get_mut(&id) else {
            return;
        };
        if p.requested_from.is_some() {
            return;
        }
        let Some(&target) = p.candidates.first() else {
            return;
        };
        p.requested_from = Some(target);
        ctx.emit(GoCastEvent::PullRequested { id, to: target });
        ctx.send(target, PushGossipMsg::Pull { ids: vec![id] });
        ctx.set_timer(
            self.cfg.pull_timeout,
            Timer::with_payload(timers::PULL_TIMEOUT, id.origin.as_u32(), id.seq as u64),
        );
    }
}

impl Stack for PushGossipNode {
    const NAME: &'static str = "push-gossip";

    /// The baseline only promises the universal invariants: it keeps no
    /// overlay (no degree bounds), it may re-request an ID whose pull
    /// timed out, and it builds no tree.
    fn capabilities() -> StackCaps {
        StackCaps::universal()
    }

    fn joined(&self) -> bool {
        true
    }

    /// Full membership is assumed, so a live baseline node is always
    /// "attached" to its dissemination structure.
    fn attached(&self) -> bool {
        true
    }

    fn overlay_degree(&self) -> usize {
        0
    }

    fn member_count(&self) -> usize {
        0
    }

    fn delivered_count(&self) -> u64 {
        self.delivered
    }

    fn holds(&self, origin: NodeId, seq: u32) -> bool {
        self.has_message(MsgId::new(origin, seq))
    }

    fn cmd_multicast() -> GoCastCommand {
        GoCastCommand::Multicast
    }

    fn cmd_join(contact: NodeId) -> GoCastCommand {
        GoCastCommand::Join { contact }
    }

    fn cmd_leave() -> GoCastCommand {
        GoCastCommand::Leave
    }

    /// No overlay or tree maintenance exists to freeze.
    fn cmd_freeze() -> Option<GoCastCommand> {
        None
    }
}

impl Protocol for PushGossipNode {
    type Msg = PushGossipMsg;
    type Command = GoCastCommand;
    type Event = GoCastEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        if !self.cfg.no_wait {
            let us = ctx
                .rng()
                .gen_range(0..self.cfg.gossip_period.as_micros() as u64);
            ctx.set_timer(Duration::from_micros(us), Timer::of_kind(timers::GOSSIP));
        }
        ctx.set_timer(Duration::from_secs(5), Timer::of_kind(timers::GC));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: PushGossipMsg) {
        match msg {
            PushGossipMsg::Gossip { ids } => {
                let mut to_request = Vec::new();
                for (id, _age) in ids {
                    *self.hear_counts.entry(id).or_insert(0) += 1;
                    if self.store.contains_key(&id) {
                        continue;
                    }
                    match self.pending.get_mut(&id) {
                        Some(p) => {
                            if !p.candidates.contains(&from) {
                                p.candidates.push(from);
                            }
                        }
                        None => {
                            self.pending.insert(
                                id,
                                PendingPull {
                                    candidates: vec![from],
                                    requested_from: None,
                                },
                            );
                            to_request.push(id);
                        }
                    }
                }
                for id in to_request {
                    self.send_pull(ctx, id);
                }
            }
            PushGossipMsg::Pull { ids } => {
                let now = ctx.now();
                for id in ids {
                    if let Some(s) = self.store.get(&id) {
                        let age_us = s.age_at(now);
                        let size = s.size;
                        ctx.send(from, PushGossipMsg::Data { id, age_us, size });
                    }
                }
            }
            PushGossipMsg::Data { id, age_us, size } => {
                if self.store.contains_key(&id) {
                    self.redundant += 1;
                    ctx.emit(GoCastEvent::RedundantData { id, from });
                    return;
                }
                self.pending.remove(&id);
                self.admit(ctx, id, age_us, size);
                self.delivered += 1;
                // The baseline does not carry causal hop counts on its own
                // wire format; 0 marks the hop as unknown in traces.
                ctx.emit(GoCastEvent::Delivered {
                    id,
                    via: DeliveryPath::Pull,
                    from,
                    hop: 0,
                });
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        match timer.kind {
            timers::GOSSIP => {
                ctx.set_timer(self.cfg.gossip_period, Timer::of_kind(timers::GOSSIP));
                // Summarize every message with gossip budget left; each
                // inclusion spends one unit of its budget.
                let now = ctx.now();
                let mut ids = Vec::new();
                self.active.retain(|id| match self.store.get_mut(id) {
                    Some(s) if s.gossips_remaining > 0 => {
                        s.gossips_remaining -= 1;
                        ids.push((*id, s.age_at(now)));
                        s.gossips_remaining > 0
                    }
                    _ => false,
                });
                if ids.is_empty() {
                    return; // nothing to gossip this period
                }
                if let Some(peer) = self.random_peer(ctx) {
                    ctx.send(peer, PushGossipMsg::Gossip { ids });
                }
            }
            timers::PULL_TIMEOUT => {
                let id = MsgId::new(NodeId::new(timer.a), timer.b as u32);
                if self.store.contains_key(&id) {
                    return;
                }
                if let Some(p) = self.pending.get_mut(&id) {
                    if let Some(failed) = p.requested_from.take() {
                        p.candidates.retain(|&c| c != failed);
                        p.candidates.push(failed);
                    }
                    self.send_pull(ctx, id);
                }
            }
            timers::GC => {
                ctx.set_timer(Duration::from_secs(5), Timer::of_kind(timers::GC));
                let now = ctx.now();
                let b = self.cfg.gc_wait;
                self.store
                    .retain(|_, s| now.saturating_since(s.received_at) <= b);
            }
            _ => debug_assert!(false, "unknown timer {}", timer.kind),
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, Self>, cmd: GoCastCommand) {
        if let GoCastCommand::Multicast = cmd {
            let id = MsgId::new(self.id, self.next_seq);
            self.next_seq += 1;
            let size = self.cfg.payload_size;
            self.admit(ctx, id, 0, size);
            ctx.emit(GoCastEvent::Injected { id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast_sim::{FixedLatency, SimBuilder, VecRecorder};

    fn run(n: usize, cfg: PushGossipConfig, seed: u64, secs: u64) -> (usize, usize) {
        let net = FixedLatency::new(n, Duration::from_millis(40));
        let mut sim = SimBuilder::new(net)
            .seed(seed)
            .build_with(VecRecorder::<GoCastEvent>::new(), |id| {
                PushGossipNode::new(id, cfg.clone())
            });
        sim.run_until(SimTime::from_secs(1));
        sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
        sim.run_until(SimTime::from_secs(1 + secs));
        let delivered = sim
            .recorder()
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
            .count();
        let redundant = sim
            .recorder()
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, GoCastEvent::RedundantData { .. }))
            .count();
        (delivered, redundant)
    }

    #[test]
    fn high_fanout_reaches_nearly_everyone() {
        let (delivered, _) = run(128, PushGossipConfig::default().with_fanout(10), 3, 30);
        assert!(
            delivered >= 126,
            "fanout 10 should reach ~all of 127, got {delivered}"
        );
    }

    #[test]
    fn fanout_five_misses_some_nodes_sometimes() {
        // e^-5 ≈ 0.7% misses per node per message; over several seeds on
        // 256 nodes we expect at least one miss somewhere.
        let mut total_missing = 0;
        for seed in 0..6 {
            let (delivered, _) = run(256, PushGossipConfig::default(), seed, 60);
            total_missing += 255 - delivered;
        }
        assert!(
            total_missing > 0,
            "fanout 5 across 6 runs should miss at least one node"
        );
    }

    #[test]
    fn no_wait_is_faster_than_periodic() {
        let time_to_full = |cfg: PushGossipConfig| {
            let n = 128;
            let net = FixedLatency::new(n, Duration::from_millis(40));
            let mut sim = SimBuilder::new(net)
                .seed(9)
                .build_with(VecRecorder::<GoCastEvent>::new(), |id| {
                    PushGossipNode::new(id, cfg.clone())
                });
            sim.run_until(SimTime::from_secs(1));
            sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
            sim.run_until(SimTime::from_secs(40));
            sim.recorder()
                .events
                .iter()
                .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
                .map(|(t, _, _)| *t)
                .max()
                .unwrap()
        };
        let periodic = time_to_full(PushGossipConfig::default().with_fanout(8));
        let no_wait = time_to_full(PushGossipConfig::no_wait().with_fanout(8));
        assert!(
            no_wait < periodic,
            "no-wait {no_wait} should beat periodic {periodic}"
        );
    }

    #[test]
    fn each_id_gossiped_at_most_fanout_times() {
        let n = 64;
        let net = FixedLatency::new(n, Duration::from_millis(10));
        let mut sim = SimBuilder::new(net)
            .seed(4)
            .build_with(VecRecorder::<GoCastEvent>::new(), |id| {
                PushGossipNode::new(id, PushGossipConfig::default())
            });
        sim.run_until(SimTime::from_secs(1));
        sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
        sim.run_until(SimTime::from_secs(30));
        // Gossip messages sent = sum over nodes of per-message inclusions;
        // each node gossips the id at most `fanout` times, so with 64
        // receivers the total is bounded by 64 * 5.
        let gossips = sim.stats().class(TrafficClass::Gossip).messages;
        assert!(gossips <= 64 * 5, "gossip count {gossips} exceeds budget");
    }

    #[test]
    fn redundant_payloads_are_rare() {
        let (delivered, redundant) = run(128, PushGossipConfig::default(), 5, 30);
        // Pulls are deduplicated by the pending table, so redundancy only
        // arises from retry races.
        assert!(redundant <= delivered / 10, "redundant {redundant}");
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn zero_fanout_rejected() {
        let _ = PushGossipNode::new(NodeId::new(0), PushGossipConfig::default().with_fanout(0));
    }
}
