//! # gocast-baselines — comparison protocols from the GoCast paper
//!
//! The paper evaluates GoCast against four alternatives (§3):
//!
//! - **gossip** — push-based gossip multicast à la Bimodal Multicast:
//!   [`PushGossipNode`] with [`PushGossipConfig::default`] (fanout 5,
//!   period 0.1 s);
//! - **no-wait gossip** — the same but gossiping immediately on reception:
//!   [`PushGossipConfig::no_wait`];
//! - **proximity overlay** — the GoCast overlay with gossip-only
//!   dissemination: [`gocast::GoCastConfig::proximity_overlay`] (lives in
//!   the core crate, since it *is* GoCast minus the tree);
//! - **random overlay** — 6 random neighbors, gossip-only:
//!   [`gocast::GoCastConfig::random_overlay`].
//!
//! This crate also carries the closed-form gossip reliability model behind
//! the paper's Figure 1 ([`prob_all_nodes_hear`],
//! [`prob_all_nodes_hear_all`]).
//!
//! Baselines reuse [`gocast::GoCastEvent`] and [`gocast::GoCastCommand`],
//! so the same recorders and analysis pipelines work across protocols.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analytic;
mod push_gossip;

pub use analytic::{expected_miss_fraction, prob_all_nodes_hear, prob_all_nodes_hear_all};
pub use push_gossip::{PushGossipConfig, PushGossipMsg, PushGossipNode};
