//! Analytic reliability model for push-based gossip (paper Figure 1).
//!
//! In an `n`-node push-gossip system with fanout `F`, the probability that
//! *all* nodes hear about a given message is `exp(-exp(ln n - F))` [6]; for
//! `m` independent messages it is that probability raised to the `m`-th
//! power, i.e. `exp(-m * exp(ln n - F))`.

/// Probability that every node in an `n`-node push-gossip system with
/// fanout `fanout` hears about one message.
///
/// ```
/// use gocast_baselines::prob_all_nodes_hear;
///
/// // The paper's Figure 1: at n = 1024 low fanouts are hopeless, high
/// // fanouts approach certainty.
/// assert!(prob_all_nodes_hear(1024, 5.0) < 0.1);
/// assert!(prob_all_nodes_hear(1024, 20.0) > 0.999);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn prob_all_nodes_hear(n: usize, fanout: f64) -> f64 {
    assert!(n > 0, "need at least one node");
    (-((n as f64).ln() - fanout).exp()).exp()
}

/// Probability that every node hears about all of `messages` independent
/// messages (Figure 1's second curve, with `messages` = 1000).
pub fn prob_all_nodes_hear_all(n: usize, fanout: f64, messages: u64) -> f64 {
    assert!(n > 0, "need at least one node");
    (-(messages as f64) * ((n as f64).ln() - fanout).exp()).exp()
}

/// Expected fraction of nodes that never hear about a message: with
/// fanout `F` each node receives the gossip a `Poisson(F)`-distributed
/// number of times, so the miss fraction is `exp(-F)` (the paper observes
/// ~0.7% at F = 5, which is `e^-5 ≈ 0.0067`).
pub fn expected_miss_fraction(fanout: f64) -> f64 {
    (-fanout).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_message_matches_closed_form() {
        let n = 1024;
        for f in [5.0_f64, 10.0, 15.0] {
            let expect = (-(((n as f64).ln() - f).exp())).exp();
            assert!((prob_all_nodes_hear(n, f) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn thousand_messages_is_single_to_the_1000() {
        let p1 = prob_all_nodes_hear(1024, 12.0);
        let p1000 = prob_all_nodes_hear_all(1024, 12.0, 1000);
        assert!((p1000 - p1.powi(1000)).abs() < 1e-9);
    }

    #[test]
    fn paper_figure1_shape() {
        // "Even without any fault ... the probability that all nodes
        // receive 1,000 messages is lower than 0.5 when the fanout is
        // smaller than 15" — the analytic crossover sits at F ≈ 14.2.
        assert!(prob_all_nodes_hear_all(1024, 14.0, 1000) < 0.5);
        assert!(prob_all_nodes_hear_all(1024, 15.0, 1000) > 0.5);
        // Monotone in fanout.
        let mut prev = 0.0;
        for f in 4..=20 {
            let p = prob_all_nodes_hear(1024, f as f64);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn miss_fraction_near_paper_value() {
        // Paper: "with fanout 5, about 0.7% of nodes ... never hear about
        // a given message".
        let f = expected_miss_fraction(5.0);
        assert!((f - 0.0067).abs() < 0.001, "got {f}");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = prob_all_nodes_hear(0, 5.0);
    }
}
