//! `--jobs N` must be a pure wall-clock optimization: fanning independent
//! simulation runs across worker threads may not change a single output
//! byte relative to the default serial path.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use gocast_experiments::{figures, ExpOptions};

fn tiny(out: PathBuf, jobs: usize) -> ExpOptions {
    let mut o = ExpOptions::quick().with_jobs(jobs);
    o.nodes = 32;
    o.sites = 32;
    o.warmup = Duration::from_secs(10);
    o.messages = 3;
    o.rate = 3.0;
    o.drain = Duration::from_secs(10);
    o.out_dir = Some(out);
    o
}

#[test]
fn jobs_do_not_change_csv_output() {
    let base = std::env::temp_dir().join(format!("gocast_jobs_identity_{}", std::process::id()));
    let serial_dir = base.join("serial");
    let parallel_dir = base.join("parallel");
    fs::create_dir_all(&serial_dir).unwrap();
    fs::create_dir_all(&parallel_dir).unwrap();

    // A fig3a-style sweep: five protocols, no failures.
    figures::fig3(&tiny(serial_dir.clone(), 1), 0.0);
    figures::fig3(&tiny(parallel_dir.clone(), 4), 0.0);

    let serial = fs::read(serial_dir.join("fig3a.csv")).expect("serial CSV written");
    let parallel = fs::read(parallel_dir.join("fig3a.csv")).expect("parallel CSV written");
    assert!(!serial.is_empty());
    assert_eq!(
        serial,
        parallel,
        "--jobs 4 CSV differs from --jobs 1:\n--- jobs 1 ---\n{}\n--- jobs 4 ---\n{}",
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&parallel)
    );

    let _ = fs::remove_dir_all(&base);
}
