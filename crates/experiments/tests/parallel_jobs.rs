//! `--jobs N` must be a pure wall-clock optimization: fanning independent
//! simulation runs across worker threads may not change a single output
//! byte relative to the default serial path.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use gocast_experiments::{figures, ExpOptions};

fn tiny(out: PathBuf, jobs: usize) -> ExpOptions {
    let mut o = ExpOptions::quick().with_jobs(jobs);
    o.nodes = 32;
    o.sites = 32;
    o.warmup = Duration::from_secs(10);
    o.messages = 3;
    o.rate = 3.0;
    o.drain = Duration::from_secs(10);
    o.out_dir = Some(out);
    o
}

#[test]
fn jobs_do_not_change_csv_output() {
    let base = std::env::temp_dir().join(format!("gocast_jobs_identity_{}", std::process::id()));
    let serial_dir = base.join("serial");
    let parallel_dir = base.join("parallel");
    fs::create_dir_all(&serial_dir).unwrap();
    fs::create_dir_all(&parallel_dir).unwrap();

    // A fig3a-style sweep: five protocols, no failures.
    figures::fig3(&tiny(serial_dir.clone(), 1), 0.0);
    figures::fig3(&tiny(parallel_dir.clone(), 4), 0.0);

    let serial = fs::read(serial_dir.join("fig3a.csv")).expect("serial CSV written");
    let parallel = fs::read(parallel_dir.join("fig3a.csv")).expect("parallel CSV written");
    assert!(!serial.is_empty());
    assert_eq!(
        serial,
        parallel,
        "--jobs 4 CSV differs from --jobs 1:\n--- jobs 1 ---\n{}\n--- jobs 4 ---\n{}",
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&parallel)
    );

    let _ = fs::remove_dir_all(&base);
}

#[test]
fn jobs_do_not_change_metrics_jsonl() {
    let base = std::env::temp_dir().join(format!("gocast_metrics_identity_{}", std::process::id()));
    let serial_dir = base.join("serial");
    let parallel_dir = base.join("parallel");
    fs::create_dir_all(&serial_dir).unwrap();
    fs::create_dir_all(&parallel_dir).unwrap();

    // `--metrics-out` forces effective serial execution, so the periodic
    // telemetry stream must be byte-identical whatever --jobs asked for.
    let opts = |dir: &PathBuf, jobs: usize| {
        let mut o = tiny(dir.clone(), jobs);
        o.out_dir = None;
        o.metrics_out = Some(dir.join("metrics.jsonl"));
        o
    };
    figures::fig3(&opts(&serial_dir, 1), 0.0);
    figures::fig3(&opts(&parallel_dir, 4), 0.0);

    // The stream files are numbered by a process-wide run counter, so the
    // two directories get different run numbers; what must match is the
    // k-th stream of one run against the k-th stream of the other.
    // `--metrics-out` forces serial execution, so creation order is the
    // protocol-variant order on both sides.
    let streams = |dir: &PathBuf| -> Vec<Vec<u8>> {
        let mut named: Vec<(u32, Vec<u8>)> = fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                let name = e.file_name().into_string().unwrap();
                let run: u32 = name
                    .trim_start_matches("metrics.")
                    .trim_end_matches("jsonl")
                    .trim_end_matches('.')
                    .parse()
                    .unwrap_or(0);
                (run, fs::read(e.path()).unwrap())
            })
            .collect();
        named.sort_by_key(|(run, _)| *run);
        named.into_iter().map(|(_, bytes)| bytes).collect()
    };
    let serial = streams(&serial_dir);
    let parallel = streams(&parallel_dir);
    // fig3 runs five protocol variants → five streams per run.
    assert_eq!(serial.len(), 5, "expected one stream per protocol variant");
    assert_eq!(serial.len(), parallel.len());
    for (k, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert!(!s.is_empty(), "stream {k} empty");
        assert!(
            s.starts_with(b"{\"manifest\":1,"),
            "stream {k} must start with the run-manifest header"
        );
        assert_eq!(s, p, "stream {k} differs between --jobs 1 and 4");
    }

    let _ = fs::remove_dir_all(&base);
}
