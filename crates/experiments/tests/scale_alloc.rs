//! Memory-boundedness proof for the sharded scale path.
//!
//! A counting global allocator tracks the peak number of *live* heap
//! bytes across all threads (the sharded kernel's workers included).
//! The scale runs must stay within an O(nodes) envelope: the
//! [`gocast_net::OnDemandKing`] latency model is O(sites), the lane
//! queues recycle payload slots, and per-node protocol state is bounded
//! (member view capacity, coordinate-cache cap) — so peak memory must
//! not bend toward the O(nodes²) a latency matrix or unbounded caches
//! would cost.
//!
//! This file is its own test binary so the global allocator sees only
//! the workload under measurement. The 10⁵-node smoke is `#[ignore]`d —
//! debug-mode at that scale takes minutes; `scripts/check.sh` covers
//! 10⁴ nodes through the release CLI instead — run it explicitly with
//! `cargo test -p gocast-experiments --test scale_alloc -- --ignored`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use gocast_experiments::scale::{run_scale_delivery, ScaleOutcome};
use gocast_experiments::ExpOptions;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn note_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn note_free(bytes: usize) {
    LIVE.fetch_sub(bytes as u64, Ordering::Relaxed);
}

struct TrackingAlloc;

// SAFETY: defers to `System` for every operation; only bumps atomic
// counters (no allocation, no drop glue) on the way through.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            note_free(layout.size());
            note_alloc(new_size);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        note_free(layout.size());
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: TrackingAlloc = TrackingAlloc;

fn peak_heap_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

fn scale_opts(nodes: usize) -> ExpOptions {
    let mut o = ExpOptions::quick().with_sim_shards(2);
    o.nodes = nodes;
    o.sites = 1740.min(nodes);
    o.warmup = Duration::from_secs(20);
    o.messages = 4;
    o.rate = 2.0;
    o.drain = Duration::from_secs(20);
    o
}

fn assert_clean_and_bounded(out: &ScaleOutcome, cap_bytes: u64) {
    assert_eq!(
        out.violations, 0,
        "oracle violations: {:?}",
        out.violation_lines
    );
    assert!(
        out.delivery_ratio() > 0.95,
        "delivery ratio {} too low",
        out.delivery_ratio()
    );
    let peak = peak_heap_bytes();
    assert!(
        peak < cap_bytes,
        "peak live heap {} MiB exceeds the {} MiB envelope for {} nodes",
        peak >> 20,
        cap_bytes >> 20,
        out.nodes
    );
    // The kernel's self-reported occupancy is live and plausible: some
    // slab slots were created, and the queue accounts nonzero bytes that
    // fit inside the measured process-wide peak.
    assert!(out.kernel.slab_slots > 0);
    assert!(out.kernel.queue_mem_bytes > 0);
    assert!(out.kernel.queue_mem_bytes < peak);
}

#[test]
fn two_thousand_node_scale_run_stays_bounded() {
    let out = run_scale_delivery(&scale_opts(2_000));
    // ~2k nodes cost tens of MiB; a 2000² latency table alone would be
    // 16 MiB and the matching per-node caches far more. 512 MiB is the
    // generous O(nodes) envelope.
    assert_clean_and_bounded(&out, 512 << 20);
}

/// The 10⁵-node smoke (ignored: minutes of debug-mode runtime).
#[test]
#[ignore = "10^5-node debug run takes minutes; check.sh smokes 10^4 via the release CLI"]
fn hundred_thousand_node_scale_run_stays_bounded() {
    let mut o = scale_opts(100_000);
    o.warmup = Duration::from_secs(30);
    // A 10⁵-node latency matrix would be 40 GB; the O(nodes) budget is
    // 8 GiB (per-node protocol state dominates).
    let out = run_scale_delivery(&o);
    assert_clean_and_bounded(&out, 8 << 30);
}
