//! Experiment options shared by the CLI and the benchmark harness.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Which protocol stack an experiment drives.
///
/// Every stack implements [`gocast_sim::Stack`] on the same kernel, so a
/// run differs *only* in the protocol: network model, seeds, fault
/// scenario, and metrics pipeline are shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StackKind {
    /// The paper's protocol (default; keeps the CLI's historic behavior).
    #[default]
    GoCast,
    /// Plumtree dissemination over HyParView membership.
    Plumtree,
}

impl StackKind {
    /// Every selectable stack, in CLI listing order.
    pub const ALL: [StackKind; 2] = [StackKind::GoCast, StackKind::Plumtree];

    /// Stable CLI/trace name.
    pub const fn name(self) -> &'static str {
        match self {
            StackKind::GoCast => "gocast",
            StackKind::Plumtree => "plumtree",
        }
    }

    /// Parses the name accepted by `--stack`.
    pub fn parse(s: &str) -> Option<Self> {
        StackKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for StackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Scale and output parameters for a run.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Number of nodes (paper default 1,024).
    pub nodes: usize,
    /// Number of latency sites (paper: 1,740 from the King dataset).
    pub sites: usize,
    /// Master seed.
    pub seed: u64,
    /// Overlay adaptation time before measurement (paper: 500 s).
    pub warmup: Duration,
    /// Number of multicast messages to inject (paper: 1,000).
    pub messages: u32,
    /// Injection rate in messages/second (paper: 100).
    pub rate: f64,
    /// Time to keep simulating after the last injection.
    pub drain: Duration,
    /// Where CSV files go (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Where to stream the causal JSONL trace (`None` = tracing off).
    ///
    /// When several runs happen in one process, the second and later
    /// traces go to `<stem>.<k>.<ext>` so no run clobbers another.
    pub trace_out: Option<PathBuf>,
    /// Where to stream periodic metrics snapshots as JSONL (`None` =
    /// metrics streaming off). Like traces, later runs in one process go
    /// to `<stem>.<k>.<ext>`.
    pub metrics_out: Option<PathBuf>,
    /// Worker threads for multi-run experiments (`--jobs N`).
    ///
    /// Each simulation run is still single-threaded and seeded, so results
    /// are identical at any job count; parallelism only changes which CPU
    /// core a run lands on. The default of 1 keeps the fully serial path.
    pub jobs: usize,
    /// Which protocol stack to run (`--stack`; default GoCast).
    pub stack: StackKind,
    /// Event-loop shards for the wire-side fabric (`--shards N` on the
    /// `testnet` subcommand). 1 (the default) is the single-threaded
    /// fabric; simulation subcommands ignore it.
    pub shards: usize,
    /// Worker threads *inside one simulation* for the sharded kernel
    /// (`--sim-shards N` on the `scale` subcommand). Unlike `jobs`
    /// (which fans independent runs out) this parallelizes a single run;
    /// the sharded kernel's fixed-lane design keeps results byte-identical
    /// at any value. 1 (the default) is the fully serial window loop.
    pub sim_shards: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            nodes: 1024,
            sites: 1740,
            seed: 42,
            warmup: Duration::from_secs(500),
            messages: 1000,
            rate: 100.0,
            drain: Duration::from_secs(40),
            out_dir: Some(PathBuf::from("results")),
            trace_out: None,
            metrics_out: None,
            jobs: 1,
            stack: StackKind::GoCast,
            shards: 1,
            sim_shards: 1,
        }
    }
}

impl ExpOptions {
    /// A reduced-scale preset that exercises every code path in seconds —
    /// used by `--quick`, the benches, and the integration tests. The
    /// *shape* of the results (who wins, roughly by how much) already
    /// shows at this scale; absolute numbers belong to the full runs.
    pub fn quick() -> Self {
        ExpOptions {
            nodes: 128,
            sites: 256,
            seed: 42,
            warmup: Duration::from_secs(60),
            messages: 50,
            rate: 25.0,
            drain: Duration::from_secs(30),
            out_dir: None,
            trace_out: None,
            metrics_out: None,
            jobs: 1,
            stack: StackKind::GoCast,
            shards: 1,
            sim_shards: 1,
        }
    }

    /// The `scale` subcommand's full-scale preset: 10⁵ nodes on the
    /// sharded kernel with an injection workload sized so the run
    /// finishes in minutes rather than hours. `--nodes`, `--warmup`,
    /// `--messages`, `--rate`, `--drain`, and `--sim-shards` all override
    /// individual fields; `--quick` replaces the preset wholesale.
    pub fn scale() -> Self {
        ExpOptions {
            nodes: 100_000,
            sites: 1740,
            seed: 42,
            warmup: Duration::from_secs(60),
            messages: 20,
            rate: 2.0,
            drain: Duration::from_secs(30),
            out_dir: Some(PathBuf::from("results")),
            trace_out: None,
            metrics_out: None,
            jobs: 1,
            stack: StackKind::GoCast,
            shards: 1,
            sim_shards: 1,
        }
    }

    /// Selects the protocol stack (builder style).
    pub fn with_stack(mut self, stack: StackKind) -> Self {
        self.stack = stack;
        self
    }

    /// Scales node count (builder style).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the sharded-kernel worker-thread count (builder style).
    pub fn with_sim_shards(mut self, sim_shards: usize) -> Self {
        self.sim_shards = sim_shards.max(1);
        self
    }

    /// The job count multi-run experiments should actually use.
    ///
    /// Tracing and metrics streaming number their per-run output files in
    /// run-start order, so either one forces the invocation serial to
    /// keep file naming (and any interleaving of streams) deterministic.
    pub fn effective_jobs(&self) -> usize {
        if self.trace_out.is_some() || self.metrics_out.is_some() {
            1
        } else {
            self.jobs.max(1)
        }
    }

    /// Injection duration implied by `messages` and `rate`.
    pub fn inject_duration(&self) -> Duration {
        Duration::from_secs_f64(self.messages as f64 / self.rate)
    }

    /// The provenance manifest stamped on every artifact this option set
    /// produces. `scenario` names the fault scenario, when one applies.
    pub fn manifest(&self, scenario: Option<&str>) -> gocast_metrics::RunManifest {
        gocast_metrics::RunManifest {
            git_sha: gocast_metrics::RunManifest::detect_git_sha().to_string(),
            host: gocast_metrics::RunManifest::detect_host().to_string(),
            stack: self.stack.name().to_string(),
            seed: self.seed,
            nodes: self.nodes,
            messages: self.messages,
            rate: self.rate,
            scenario: scenario.map(str::to_string),
        }
    }

    /// Writes `table` as `<name>.csv` under `out_dir`, if set, headed by
    /// the run-provenance manifest comment.
    pub fn write_csv(&self, name: &str, table: &gocast_analysis::Table) {
        self.write_csv_for_scenario(name, table, None);
    }

    /// [`ExpOptions::write_csv`] with the scenario recorded in the
    /// manifest comment.
    pub fn write_csv_for_scenario(
        &self,
        name: &str,
        table: &gocast_analysis::Table,
        scenario: Option<&str>,
    ) {
        if let Some(dir) = &self.out_dir {
            let path = dir.join(format!("{name}.csv"));
            let comment = self.manifest(scenario).csv_comment();
            if let Err(e) = table.write_csv_with_comment(&path, Some(&comment)) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = ExpOptions::default();
        assert_eq!(o.nodes, 1024);
        assert_eq!(o.sites, 1740);
        assert_eq!(o.warmup, Duration::from_secs(500));
        assert_eq!(o.messages, 1000);
        assert_eq!(o.rate, 100.0);
    }

    #[test]
    fn inject_duration_follows_rate() {
        let o = ExpOptions::default();
        assert_eq!(o.inject_duration(), Duration::from_secs(10));
        let q = ExpOptions::quick();
        assert_eq!(q.inject_duration(), Duration::from_secs(2));
    }

    #[test]
    fn jobs_default_serial_and_trace_forces_serial() {
        let o = ExpOptions::default();
        assert_eq!(o.jobs, 1);
        assert_eq!(o.effective_jobs(), 1);
        let o = o.with_jobs(4);
        assert_eq!(o.effective_jobs(), 4);
        let mut traced = o.clone();
        traced.trace_out = Some(PathBuf::from("t.jsonl"));
        assert_eq!(traced.effective_jobs(), 1, "tracing forces serial");
        let mut streamed = o.clone();
        streamed.metrics_out = Some(PathBuf::from("m.jsonl"));
        assert_eq!(
            streamed.effective_jobs(),
            1,
            "metrics streaming forces serial"
        );
        assert_eq!(ExpOptions::default().with_jobs(0).jobs, 1, "clamped");
    }

    #[test]
    fn manifest_reflects_options_and_scenario() {
        let m = ExpOptions::quick().manifest(Some("churn"));
        assert_eq!(m.stack, "gocast");
        assert_eq!(m.seed, 42);
        assert_eq!(m.nodes, 128);
        assert_eq!(m.scenario.as_deref(), Some("churn"));
        assert!(m.csv_comment().starts_with("# gocast-run git="));
    }

    #[test]
    fn scale_preset_targets_the_sharded_kernel() {
        let s = ExpOptions::scale();
        assert_eq!(s.nodes, 100_000);
        assert_eq!(s.sim_shards, 1, "serial by default; --sim-shards opts in");
        assert!(s.inject_duration() <= Duration::from_secs(10));
        assert_eq!(ExpOptions::scale().with_sim_shards(0).sim_shards, 1);
        assert_eq!(ExpOptions::scale().with_sim_shards(4).sim_shards, 4);
    }

    #[test]
    fn quick_is_small() {
        let q = ExpOptions::quick();
        assert!(q.nodes <= 256);
        assert!(q.out_dir.is_none());
    }

    #[test]
    fn stack_names_round_trip_and_default_is_gocast() {
        assert_eq!(ExpOptions::default().stack, StackKind::GoCast);
        for k in StackKind::ALL {
            assert_eq!(StackKind::parse(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(StackKind::parse("chord"), None);
        assert_eq!(
            ExpOptions::quick().with_stack(StackKind::Plumtree).stack,
            StackKind::Plumtree
        );
    }
}
