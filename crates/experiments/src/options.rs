//! Experiment options shared by the CLI and the benchmark harness.

use std::path::PathBuf;
use std::time::Duration;

/// Scale and output parameters for a run.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Number of nodes (paper default 1,024).
    pub nodes: usize,
    /// Number of latency sites (paper: 1,740 from the King dataset).
    pub sites: usize,
    /// Master seed.
    pub seed: u64,
    /// Overlay adaptation time before measurement (paper: 500 s).
    pub warmup: Duration,
    /// Number of multicast messages to inject (paper: 1,000).
    pub messages: u32,
    /// Injection rate in messages/second (paper: 100).
    pub rate: f64,
    /// Time to keep simulating after the last injection.
    pub drain: Duration,
    /// Where CSV files go (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Where to stream the causal JSONL trace (`None` = tracing off).
    ///
    /// When several runs happen in one process, the second and later
    /// traces go to `<stem>.<k>.<ext>` so no run clobbers another.
    pub trace_out: Option<PathBuf>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            nodes: 1024,
            sites: 1740,
            seed: 42,
            warmup: Duration::from_secs(500),
            messages: 1000,
            rate: 100.0,
            drain: Duration::from_secs(40),
            out_dir: Some(PathBuf::from("results")),
            trace_out: None,
        }
    }
}

impl ExpOptions {
    /// A reduced-scale preset that exercises every code path in seconds —
    /// used by `--quick`, the benches, and the integration tests. The
    /// *shape* of the results (who wins, roughly by how much) already
    /// shows at this scale; absolute numbers belong to the full runs.
    pub fn quick() -> Self {
        ExpOptions {
            nodes: 128,
            sites: 256,
            seed: 42,
            warmup: Duration::from_secs(60),
            messages: 50,
            rate: 25.0,
            drain: Duration::from_secs(30),
            out_dir: None,
            trace_out: None,
        }
    }

    /// Scales node count (builder style).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Injection duration implied by `messages` and `rate`.
    pub fn inject_duration(&self) -> Duration {
        Duration::from_secs_f64(self.messages as f64 / self.rate)
    }

    /// Writes `table` as `<name>.csv` under `out_dir`, if set.
    pub fn write_csv(&self, name: &str, table: &gocast_analysis::Table) {
        if let Some(dir) = &self.out_dir {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = table.write_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = ExpOptions::default();
        assert_eq!(o.nodes, 1024);
        assert_eq!(o.sites, 1740);
        assert_eq!(o.warmup, Duration::from_secs(500));
        assert_eq!(o.messages, 1000);
        assert_eq!(o.rate, 100.0);
    }

    #[test]
    fn inject_duration_follows_rate() {
        let o = ExpOptions::default();
        assert_eq!(o.inject_duration(), Duration::from_secs(10));
        let q = ExpOptions::quick();
        assert_eq!(q.inject_duration(), Duration::from_secs(2));
    }

    #[test]
    fn quick_is_small() {
        let q = ExpOptions::quick();
        assert!(q.nodes <= 256);
        assert!(q.out_dir.is_none());
    }
}
