//! Shared reporting helpers: the one kernel-stats formatter every
//! experiment uses, and table rendering for metrics snapshots.
//!
//! Before this module each of `figures`, `chaos`, and the sweep branch of
//! `main` carried its own copy of the kernel-counter formatting; they now
//! all call [`log_kernel`] / [`log_kernel_tagged`] / [`kernel_digest`].

use gocast_metrics::{HistogramSnapshot, MetricValue, Snapshot};
use gocast_sim::KernelStats;

use gocast_analysis::Table;

/// Reports the kernel counters of a finished run on stderr, next to the
/// progress lines — every experiment prints its event throughput.
pub fn log_kernel(kernel: &KernelStats) {
    eprintln!("    kernel: {kernel}");
}

/// [`log_kernel`] with a tag distinguishing runs in one experiment (e.g.
/// `GoCast seed 42` in the sweep).
pub fn log_kernel_tagged(tag: &str, kernel: &KernelStats) {
    eprintln!("    kernel[{tag}]: {kernel}");
}

/// The deterministic `kernel[ev=... del=...]` digest embedded in chaos
/// summary strings: every simulation-domain kernel counter, no wall-clock
/// quantity.
pub fn kernel_digest(kernel: &KernelStats) -> String {
    format!(
        "kernel[ev={} del={} drop={} part={} loss={} tmr={} cmd={} ctl={}]",
        kernel.events_processed,
        kernel.deliveries,
        kernel.messages_dropped,
        kernel.partition_drops,
        kernel.chaos_losses,
        kernel.timers_fired,
        kernel.commands,
        kernel.control_events,
    )
}

/// Upper bound of the smallest bucket prefix covering quantile `q` of a
/// snapshotted log₂ histogram (0 when empty).
fn quantile_upper_bound(h: &HistogramSnapshot, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let target = (q * h.count as f64).ceil() as u64;
    let mut seen = 0u64;
    for &(i, c) in &h.buckets {
        seen += c;
        if seen >= target {
            // Bucket 0 holds exact zeros; bucket i >= 1 covers
            // [2^(i-1), 2^i).
            return if i == 0 { 0 } else { 1u64 << i };
        }
    }
    h.max
}

/// Splits a metric name into its subsystem prefix (`kernel`, `proto`,
/// `fabric`, ...) for grouping.
fn subsystem(name: &str) -> &str {
    name.split('_').next().unwrap_or(name)
}

/// Renders a snapshot as one table per subsystem (metrics grouped by
/// their name prefix), in first-appearance order. Counters fill only the
/// `value` column; gauges add their high-water mark; histograms report
/// count, mean, the p99 bucket bound, and max.
pub fn snapshot_tables(snap: &Snapshot) -> Vec<(String, Table)> {
    let mut groups: Vec<(String, Table)> = Vec::new();
    for entry in snap.entries() {
        let sys = subsystem(entry.name);
        if groups.last().is_none_or(|(name, _)| name != sys) {
            groups.push((
                sys.to_string(),
                Table::new([
                    "metric",
                    "kind",
                    "value",
                    "high_water",
                    "mean",
                    "p99",
                    "max",
                ]),
            ));
        }
        let table = &mut groups.last_mut().expect("just pushed").1;
        match &entry.value {
            MetricValue::Counter(v) => {
                table.row([entry.name, "counter", &v.to_string(), "-", "-", "-", "-"]);
            }
            MetricValue::Gauge { value, high_water } => {
                table.row([
                    entry.name,
                    "gauge",
                    &value.to_string(),
                    &high_water.to_string(),
                    "-",
                    "-",
                    "-",
                ]);
            }
            MetricValue::Histogram(h) => {
                let mean = if h.count == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", h.sum as f64 / h.count as f64)
                };
                table.row([
                    entry.name,
                    if entry.wall { "hist(wall)" } else { "hist" },
                    &h.count.to_string(),
                    "-",
                    &mean,
                    &quantile_upper_bound(h, 0.99).to_string(),
                    &h.max.to_string(),
                ]);
            }
        }
    }
    groups
}

/// Prints [`snapshot_tables`] to stdout under a heading.
pub fn print_snapshot(heading: &str, snap: &Snapshot) {
    for (sys, table) in snapshot_tables(snap) {
        println!("{heading} — {sys}:\n{table}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast_metrics::Log2Histogram;

    #[test]
    fn digest_is_deterministic_and_complete() {
        let k = KernelStats::default();
        let d = kernel_digest(&k);
        assert!(d.starts_with("kernel[ev=0"));
        assert!(d.ends_with("ctl=0]"));
        assert_eq!(d, kernel_digest(&KernelStats::default()));
    }

    #[test]
    fn snapshot_tables_group_by_prefix() {
        let mut snap = Snapshot::new();
        snap.record_counter("kernel_events", 10);
        snap.record_counter("kernel_timers", 2);
        snap.record_counter("proto_pushes", 7);
        let mut h = Log2Histogram::new();
        h.observe(0);
        h.observe(5);
        snap.record_histogram("proto_depth", &h);
        let groups = snapshot_tables(&snap);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "kernel");
        assert_eq!(groups[0].1.rows(), 2);
        assert_eq!(groups[1].0, "proto");
        assert_eq!(groups[1].1.rows(), 2);
    }

    #[test]
    fn quantile_bound_reads_buckets() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(1000);
        let snap = {
            let mut s = Snapshot::new();
            s.record_histogram("x", &h);
            s
        };
        let MetricValue::Histogram(hs) = &snap.entries()[0].value else {
            panic!("not a histogram");
        };
        assert_eq!(quantile_upper_bound(hs, 0.5), 2);
        assert_eq!(quantile_upper_bound(hs, 1.0), 1024);
        assert_eq!(quantile_upper_bound(hs, 0.99), 2);
    }
}
