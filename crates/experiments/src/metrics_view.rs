//! The `metrics` subcommand: run a fully instrumented quick-scale
//! simulation (and, when loopback is available, a small wire fabric) and
//! render every subsystem's metric tables — the one-stop view of what
//! the telemetry registry collects.
//!
//! `metrics --overhead` instead measures what the instrumentation costs:
//! the same steady-state workload runs with telemetry off and on, and
//! the run fails (exit 1) if the instrumented kernel processes events
//! more than [`MAX_OVERHEAD`] slower — the budget DESIGN.md promises.

use std::time::{Duration, Instant};

use gocast::{GoCastCommand, GoCastConfig};
use gocast_sim::SimTime;
use gocast_testnet::{loopback_available, Testnet, TestnetConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::options::ExpOptions;
use crate::report::print_snapshot;
use crate::runners::{build_gocast_sim, combined_snapshot};

/// Telemetry may slow steady-state event processing by at most this
/// fraction (5%).
pub const MAX_OVERHEAD: f64 = 0.05;

/// Trial pairs in the overhead measurement. Single containers show
/// ±10% sub-second throughput drift (CPU steal), far above the effect
/// being measured, so naive A-then-B timing is hopeless. Instead each
/// pair runs both modes back to back — sharing whatever noise regime the
/// container is in — in alternating order (to cancel any first-run
/// bias), and the overhead is the *median* of the per-pair ratios,
/// which discards pairs a noise spike landed inside.
const PAIRS: usize = 7;

/// Scales simulation-sized defaults down to a seconds-long run, keeping
/// any explicitly set flag (the same defaulting rule `testnet` uses).
fn resolve_scale(opts: &ExpOptions) -> ExpOptions {
    let d = ExpOptions::default();
    let mut o = opts.clone();
    if o.nodes == d.nodes {
        o.nodes = 128;
        o.sites = 256;
    }
    if o.warmup == d.warmup {
        o.warmup = Duration::from_secs(60);
    }
    if o.messages == d.messages {
        o.messages = 50;
    }
    if o.rate == d.rate {
        o.rate = 25.0;
    }
    if o.drain == d.drain {
        o.drain = Duration::from_secs(10);
    }
    o
}

/// Runs a GoCast dissemination workload with kernel telemetry enabled
/// and returns the final combined snapshot.
fn instrumented_run(o: &ExpOptions) -> gocast_metrics::Snapshot {
    let mut sim = build_gocast_sim(o, &GoCastConfig::default(), false);
    sim.enable_telemetry();
    sim.run_until(SimTime::ZERO + o.warmup);
    let start = sim.now() + Duration::from_millis(100);
    let mut rng = SmallRng::seed_from_u64(o.seed ^ 0x5EED);
    let live: Vec<_> = sim.alive_nodes().collect();
    for i in 0..o.messages {
        let at = start + Duration::from_secs_f64(f64::from(i) / o.rate);
        sim.schedule_command(
            at,
            live[rng.gen_range(0..live.len())],
            GoCastCommand::Multicast,
        );
    }
    sim.run_until(start + o.inject_duration() + o.drain);
    combined_snapshot(&sim)
}

/// The `metrics` subcommand body. Returns the process exit code.
pub fn metrics(opts: &ExpOptions) -> i32 {
    let o = resolve_scale(opts);
    eprintln!(
        "metrics: instrumented GoCast run, {} nodes, {} messages, seed {} ...",
        o.nodes, o.messages, o.seed
    );
    let snap = instrumented_run(&o);
    print_snapshot("simulation", &snap);

    if loopback_available() {
        eprintln!("metrics: wire fabric, 8 nodes, 2 s ...");
        let cfg = TestnetConfig::new(8).with_seed(o.seed);
        match Testnet::build_bootstrap(&cfg) {
            Ok(mut net) => {
                for k in 0..4u32 {
                    net.schedule_command(
                        SimTime::from_millis(500 + u64::from(k) * 250),
                        gocast_sim::NodeId::new(k % 8),
                        GoCastCommand::Multicast,
                    );
                }
                net.run_for(Duration::from_secs(2));
                print_snapshot("wire fabric", &net.metrics_snapshot());
            }
            Err(e) => eprintln!("metrics: fabric unavailable: {e}"),
        }
    } else {
        eprintln!("metrics: loopback UDP unavailable; skipping the wire fabric view");
    }
    0
}

/// Steady-state kernel throughput (events per wall-clock second) of a
/// warmed-up simulation, with or without telemetry.
fn steady_events_per_sec(o: &ExpOptions, telemetry: bool) -> f64 {
    let mut sim = build_gocast_sim(o, &GoCastConfig::default(), false);
    if telemetry {
        sim.enable_telemetry();
    }
    sim.run_until(SimTime::from_secs(30));
    let measured_secs = 480u64;
    let before = sim.kernel_stats().events_processed;
    let t0 = Instant::now();
    sim.run_until(SimTime::from_secs(30 + measured_secs));
    let wall = t0.elapsed().as_secs_f64();
    (sim.kernel_stats().events_processed - before) as f64 / wall
}

/// The `metrics --overhead` gate. Returns the process exit code.
pub fn overhead(opts: &ExpOptions) -> i32 {
    let o = resolve_scale(opts);
    eprintln!(
        "metrics --overhead: {} nodes, median over {PAIRS} interleaved pairs ...",
        o.nodes
    );
    let mut off = 0.0f64;
    let mut on = 0.0f64;
    let mut ratios = Vec::with_capacity(PAIRS);
    for k in 0..PAIRS {
        let (first, second) = if k % 2 == 0 {
            let a = steady_events_per_sec(&o, false);
            (a, steady_events_per_sec(&o, true))
        } else {
            let b = steady_events_per_sec(&o, true);
            (steady_events_per_sec(&o, false), b)
        };
        off = off.max(first);
        on = on.max(second);
        ratios.push(second / first);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead = 1.0 - ratios[PAIRS / 2];
    println!("telemetry off: {off:>12.0} events/s (best trial)");
    println!("telemetry on:  {on:>12.0} events/s (best trial)");
    println!(
        "overhead:      {:>11.2}% (budget {:.0}%)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    if overhead > MAX_OVERHEAD {
        eprintln!(
            "metrics --overhead: telemetry costs {:.2}%, over the {:.0}% budget",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_scale_keeps_explicit_flags() {
        let o = resolve_scale(&ExpOptions::default());
        assert_eq!(o.nodes, 128);
        assert_eq!(o.warmup, Duration::from_secs(60));
        let explicit = ExpOptions {
            nodes: 64,
            ..ExpOptions::default()
        };
        assert_eq!(resolve_scale(&explicit).nodes, 64);
    }

    #[test]
    fn instrumented_run_reports_every_subsystem() {
        let mut o = resolve_scale(&ExpOptions::quick());
        o.nodes = 32;
        o.sites = 32;
        o.warmup = Duration::from_secs(10);
        o.messages = 4;
        o.rate = 4.0;
        o.drain = Duration::from_secs(5);
        let snap = instrumented_run(&o);
        let names: Vec<&str> = snap.entries().iter().map(|e| e.name).collect();
        assert!(names.contains(&"kernel_events"));
        assert!(
            names.contains(&"kernel_queue_depth"),
            "telemetry histograms on"
        );
        assert!(names.contains(&"proto_deliveries"));
    }
}
