//! # gocast-experiments — regenerating every figure of the GoCast paper
//!
//! Each function in [`figures`] reproduces one figure or in-text claim of
//! the paper (see DESIGN.md's experiment index): it runs the necessary
//! simulations, prints the series/rows the paper reports, and writes CSV
//! under `results/`. The `gocast-experiments` binary exposes them as
//! subcommands; the Criterion benches call the same functions at reduced
//! scale.
//!
//! ```no_run
//! use gocast_experiments::{figures, ExpOptions};
//!
//! // Quick-scale Figure 3(a): five protocols, no failures.
//! let tables = figures::fig3(&ExpOptions::quick(), 0.0);
//! assert_eq!(tables[0].rows(), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod compare;
pub mod figures;
pub mod metrics_view;
mod options;
pub mod report;
pub mod runners;
pub mod scale;
pub mod sweep;
pub mod testnet;

pub use options::{ExpOptions, StackKind};
pub use runners::{DelayStats, ExpRecorder, MetricsStream, Proto};
