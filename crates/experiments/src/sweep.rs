//! Multi-seed sweeps: every topology, bootstrap graph, and failure draw in
//! this reproduction is seeded, so re-running an experiment across seeds
//! quantifies how sensitive a result is to the random inputs — something
//! the paper (single dataset, unspecified repetition count) cannot show.

use gocast_analysis::Summary;

use crate::options::ExpOptions;

/// Runs `f(opts-with-seed)` for `seeds` consecutive seeds starting at the
/// option set's base seed, in parallel threads, and summarizes the scalar
/// it returns.
///
/// `f` must be deterministic given the options (all our runners are).
///
/// ```no_run
/// use gocast::GoCastConfig;
/// use gocast_experiments::{runners, sweep::sweep_seeds, ExpOptions, Proto};
///
/// let s = sweep_seeds(&ExpOptions::quick(), 5, |o| {
///     runners::run_delay(o, Proto::GoCast(GoCastConfig::default()), 0.0)
///         .per_node_avg
///         .mean()
///         .as_secs_f64()
/// });
/// println!("mean delay across 5 topologies: {s}");
/// ```
///
/// # Panics
///
/// Panics if `seeds == 0` or if a worker thread panics.
pub fn sweep_seeds<F>(opts: &ExpOptions, seeds: u64, f: F) -> Summary
where
    F: Fn(&ExpOptions) -> f64 + Sync,
{
    assert!(seeds > 0, "need at least one seed");
    let mut values = vec![0.0f64; seeds as usize];
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..seeds)
            .zip(values.iter_mut())
            .map(|(i, slot)| {
                let o = opts.clone().with_seed(opts.seed.wrapping_add(i));
                scope.spawn(move || {
                    *slot = f(&o);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sweep worker panicked");
        }
    });
    Summary::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_varies_seed_and_summarizes() {
        let opts = ExpOptions::quick();
        let s = sweep_seeds(&opts, 4, |o| o.seed as f64);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, opts.seed as f64);
        assert_eq!(s.max, opts.seed as f64 + 3.0);
    }

    #[test]
    fn sweep_runs_real_protocol_across_seeds() {
        // Tiny end-to-end sweep: GoCast mean delay over 2 topologies.
        let mut opts = ExpOptions::quick();
        opts.nodes = 32;
        opts.sites = 32;
        opts.warmup = std::time::Duration::from_secs(10);
        opts.messages = 3;
        opts.rate = 3.0;
        opts.drain = std::time::Duration::from_secs(10);
        let s = sweep_seeds(&opts, 2, |o| {
            crate::runners::run_delay(
                o,
                crate::runners::Proto::GoCast(gocast::GoCastConfig::default()),
                0.0,
            )
            .per_node_avg
            .mean()
            .as_secs_f64()
        });
        assert!(s.mean > 0.0 && s.mean < 2.0, "implausible delay {s}");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let _ = sweep_seeds(&ExpOptions::quick(), 0, |_| 0.0);
    }
}
