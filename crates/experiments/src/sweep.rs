//! Parallel multi-run execution.
//!
//! Every topology, bootstrap graph, and failure draw in this reproduction
//! is seeded, so independent simulation runs (different seeds, protocols,
//! or system sizes) can be fanned across worker threads without changing
//! any result: each run is still a single-threaded deterministic
//! simulation, and [`parallel_map`] merges results back in submission
//! order, so experiment output is **byte-identical** at any `--jobs`
//! count (asserted by the `jobs_do_not_change_csv_output` test).
//!
//! [`sweep_seeds`] builds on this to re-run an experiment across
//! consecutive seeds and summarize the scalar it returns — quantifying how
//! sensitive a result is to the random inputs, something the paper
//! (single dataset, unspecified repetition count) cannot show.

use gocast_analysis::Summary;

use crate::options::ExpOptions;

// `parallel_map` moved into `gocast-sim` when the sharded kernel arrived:
// the per-seed experiment fan-out and the kernel's intra-run parallelism
// now share one audited implementation. Re-exported here so experiment
// code (and the `jobs_do_not_change_csv_output` guarantees built on it)
// keep their historic import path.
pub use gocast_sim::parallel_map;

/// Runs `f(opts-with-seed)` for `seeds` consecutive seeds starting at the
/// option set's base seed — across `opts.jobs` worker threads — and
/// summarizes the scalar it returns. Values are aggregated in seed order,
/// so the summary is identical at any job count.
///
/// `f` must be deterministic given the options (all our runners are).
///
/// ```no_run
/// use gocast::GoCastConfig;
/// use gocast_experiments::{runners, sweep::sweep_seeds, ExpOptions, Proto};
///
/// let s = sweep_seeds(&ExpOptions::quick().with_jobs(4), 5, |o| {
///     runners::run_delay(o, Proto::GoCast(GoCastConfig::default()), 0.0)
///         .per_node_avg
///         .mean()
///         .as_secs_f64()
/// });
/// println!("mean delay across 5 topologies: {s}");
/// ```
///
/// # Panics
///
/// Panics if `seeds == 0` or if a worker thread panics.
pub fn sweep_seeds<F>(opts: &ExpOptions, seeds: u64, f: F) -> Summary
where
    F: Fn(&ExpOptions) -> f64 + Sync,
{
    assert!(seeds > 0, "need at least one seed");
    let runs: Vec<ExpOptions> = (0..seeds)
        .map(|i| opts.clone().with_seed(opts.seed.wrapping_add(i)))
        .collect();
    let values = parallel_map(opts.effective_jobs(), runs, |_, o| f(&o));
    Summary::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_varies_seed_and_summarizes() {
        let opts = ExpOptions::quick();
        let s = sweep_seeds(&opts, 4, |o| o.seed as f64);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, opts.seed as f64);
        assert_eq!(s.max, opts.seed as f64 + 3.0);
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        // Deliberately uneven work so completion order differs from
        // submission order; results must still come back sorted.
        let items: Vec<u64> = (0..32).collect();
        for jobs in [1, 2, 4, 7] {
            let out = parallel_map(jobs, items.clone(), |i, v| {
                if v % 5 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                assert_eq!(i as u64, v);
                v * 10
            });
            assert_eq!(
                out,
                (0..32).map(|v| v * 10).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscribed() {
        let out: Vec<u32> = parallel_map(8, Vec::<u32>::new(), |_, v| v);
        assert!(out.is_empty());
        let out = parallel_map(64, vec![1u32, 2], |_, v| v + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn sweep_is_identical_at_any_job_count() {
        let serial = sweep_seeds(&ExpOptions::quick(), 6, |o| (o.seed * 3) as f64);
        let parallel = sweep_seeds(&ExpOptions::quick().with_jobs(4), 6, |o| {
            (o.seed * 3) as f64
        });
        assert_eq!(serial.mean, parallel.mean);
        assert_eq!(serial.min, parallel.min);
        assert_eq!(serial.max, parallel.max);
    }

    #[test]
    fn sweep_runs_real_protocol_across_seeds() {
        // Tiny end-to-end sweep: GoCast mean delay over 2 topologies,
        // exercising the threaded path.
        let mut opts = ExpOptions::quick().with_jobs(2);
        opts.nodes = 32;
        opts.sites = 32;
        opts.warmup = std::time::Duration::from_secs(10);
        opts.messages = 3;
        opts.rate = 3.0;
        opts.drain = std::time::Duration::from_secs(10);
        let s = sweep_seeds(&opts, 2, |o| {
            crate::runners::run_delay(
                o,
                crate::runners::Proto::GoCast(gocast::GoCastConfig::default()),
                0.0,
            )
            .per_node_avg
            .mean()
            .as_secs_f64()
        });
        assert!(s.mean > 0.0 && s.mean < 2.0, "implausible delay {s}");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let _ = sweep_seeds(&ExpOptions::quick(), 0, |_| 0.0);
    }
}
