//! Chaos runs: scenario-driven churn, correlated failures and partitions.
//!
//! The `chaos` subcommand drives a protocol stack (GoCast by default,
//! Plumtree via `--stack plumtree`; see [`run_chaos_with`] for the
//! stack-generic driver) through a [`gocast_sim::Scenario`] — either one
//! of the built-in presets ([`builtin_scenario`]) or an ad-hoc spec
//! string ([`parse_spec`]) — and measures how dissemination *degrades and
//! recovers*:
//!
//! - **delivery ratio**, audited end-of-run against message stores: a node
//!   owes a delivery exactly when the scenario plan says it was present at
//!   injection time and never departed afterwards;
//! - **sliding-window delivery ratios** over injection time, showing the
//!   dip-and-recover shape around fault bursts;
//! - **tree-repair time** after each labelled fault burst: how long until
//!   ≥ [`REPAIR_FRAC`] of the nodes that should be present are attached to
//!   the dissemination tree again;
//! - **orphan spells**: how long nodes spend detached from the tree;
//! - the online [`InvariantOracle`], checking protocol safety invariants
//!   (no duplicate delivery, no delivery before injection, degree bounds,
//!   no pull of a held message) *while the faults are active*.
//!
//! Every run is deterministic: the scenario compiles from its own seeded
//! RNG stream, the simulation is single-threaded and seeded, and
//! [`ChaosOutcome::summary_string`] deliberately excludes wall-clock
//! counters — so the same options replay to a byte-identical summary at
//! any `--jobs` count (asserted by the integration tests).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use gocast::{bootstrap_random_graph, GoCastConfig, GoCastEvent, GoCastNode};
use gocast_analysis::{
    fmt_ms, fmt_secs, InvariantOracle, MetricsRecorder, OracleConfig, OrphanTracker,
    RecoveryTracker, Table, WindowRatio,
};
use gocast_plumtree::{PlumtreeConfig, PlumtreeNode};
use gocast_sim::{
    KernelStats, NodeId, PresenceTimeline, Recorder, Scenario, ScenarioEnv, Sim, SimBuilder,
    SimTime, Split, Stack,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gocast_metrics::ProtocolMetrics;

use crate::options::{ExpOptions, StackKind};
use crate::report::kernel_digest;
use crate::runners::{build_network, MetricsStream};
use crate::sweep::parallel_map;

/// Sampling period for the tree-attachment time series.
pub const SLICE: Duration = Duration::from_millis(500);

/// A fault burst counts as repaired once this fraction of the nodes that
/// should be present are attached to the tree (parent set, or root).
pub const REPAIR_FRAC: f64 = 0.99;

/// Width of the sliding delivery-ratio windows.
pub const WINDOW: Duration = Duration::from_secs(5);

/// The composite recorder chaos runs install: steady-state metrics,
/// recovery trackers, and the online invariant oracle, all fed from the
/// same event stream.
#[derive(Debug)]
pub struct ChaosRecorder {
    /// Steady-state delivery aggregates (redundancy, tree fraction, pulls).
    pub metrics: MetricsRecorder,
    /// Per-message injection/delivery counting for windowed ratios.
    pub recovery: RecoveryTracker,
    /// Orphan (tree-detachment) spell accounting.
    pub orphans: OrphanTracker,
    /// Online safety-invariant checker.
    pub oracle: InvariantOracle,
    /// Capability-neutral protocol counters folded from the event stream.
    pub proto: ProtocolMetrics,
    /// Sum of causal hop counts over all deliveries.
    pub hop_sum: u64,
    /// Deliveries carrying a nonzero hop count.
    pub hops: u64,
    /// Deliveries recovered via pull/graft (not the primary push path).
    pub pull_deliveries: u64,
    /// All deliveries seen in the event stream.
    pub deliveries: u64,
}

impl ChaosRecorder {
    /// A recorder with an explicit oracle (built per stack from its
    /// [`gocast_sim::StackCaps`]).
    pub fn with_oracle(oracle: InvariantOracle) -> Self {
        ChaosRecorder {
            metrics: MetricsRecorder::new(),
            recovery: RecoveryTracker::new(WINDOW),
            orphans: OrphanTracker::new(),
            oracle,
            proto: ProtocolMetrics::default(),
            hop_sum: 0,
            hops: 0,
            pull_deliveries: 0,
            deliveries: 0,
        }
    }

    /// A recorder whose oracle bounds match a GoCast `cfg`.
    pub fn for_protocol(cfg: &GoCastConfig) -> Self {
        Self::with_oracle(InvariantOracle::for_protocol(cfg))
    }
}

impl Recorder<GoCastEvent> for ChaosRecorder {
    fn record(&mut self, now: SimTime, node: NodeId, event: GoCastEvent) {
        event.observe_into(&mut self.proto);
        if let GoCastEvent::Delivered { via, hop, .. } = &event {
            self.deliveries += 1;
            if *hop > 0 {
                self.hop_sum += u64::from(*hop);
                self.hops += 1;
            }
            if matches!(via, gocast::DeliveryPath::Pull) {
                self.pull_deliveries += 1;
            }
        }
        self.recovery.record(now, node, event.clone());
        self.orphans.record(now, node, event.clone());
        self.oracle.record(now, node, event.clone());
        self.metrics.record(now, node, event);
    }
}

/// Repair measurement for one labelled fault burst.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstRepair {
    /// When the burst fired.
    pub at: SimTime,
    /// The plan's burst label (e.g. `partition`, `crash-group(3):7`).
    pub label: String,
    /// Time from the burst until tree attachment recovered above
    /// [`REPAIR_FRAC`] (`None`: never within the run).
    pub repair: Option<Duration>,
}

/// Everything one seeded chaos run produces.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Name of the stack that ran ([`Stack::NAME`]).
    pub stack: &'static str,
    /// The seed this run used.
    pub seed: u64,
    /// Concrete faults in the compiled plan.
    pub plan_len: usize,
    /// Messages injected.
    pub injected: u64,
    /// Deliveries owed (present-at-injection, never-departing nodes,
    /// origin excluded, summed over messages).
    pub expected: u64,
    /// Deliveries found in message stores at the end of the run.
    pub delivered: u64,
    /// Sliding-window delivery ratios over injection time.
    pub windows: Vec<WindowRatio>,
    /// Tree-repair time after each labelled burst.
    pub repairs: Vec<BurstRepair>,
    /// Orphan spells closed during the run.
    pub orphan_spells: u64,
    /// Mean orphan spell duration.
    pub orphan_mean: Duration,
    /// Longest orphan spell.
    pub orphan_max: Duration,
    /// Records the invariant oracle checked.
    pub oracle_records: u64,
    /// Invariant violations found (should be 0).
    pub violations: usize,
    /// The first few violations, formatted (empty on a clean run) — so a
    /// failing gate says *what* broke, not just that something did.
    pub violation_lines: Vec<String>,
    /// Sum of causal hop counts over event-stream deliveries.
    pub hop_sum: u64,
    /// Event-stream deliveries carrying a nonzero hop count.
    pub hops: u64,
    /// Event-stream deliveries recovered via pull/graft.
    pub pull_deliveries: u64,
    /// All event-stream deliveries.
    pub event_deliveries: u64,
    /// Kernel counters at the end of the run.
    pub kernel: KernelStats,
    /// Final combined metrics snapshot (kernel + protocol).
    pub metrics: gocast_metrics::Snapshot,
}

impl ChaosOutcome {
    /// `delivered / expected` (1.0 when nothing was owed).
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }

    /// Mean causal hop count over deliveries that carried one.
    pub fn mean_hops(&self) -> f64 {
        if self.hops == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.hops as f64
        }
    }

    /// Fraction of deliveries that needed the recovery path (gossip pull
    /// for GoCast, IHAVE-triggered graft for Plumtree) rather than the
    /// primary push.
    pub fn recovery_fraction(&self) -> f64 {
        if self.event_deliveries == 0 {
            0.0
        } else {
            self.pull_deliveries as f64 / self.event_deliveries as f64
        }
    }

    /// Mean repair time over bursts that did recover within the run.
    pub fn mean_repair(&self) -> Option<Duration> {
        let done: Vec<Duration> = self.repairs.iter().filter_map(|r| r.repair).collect();
        if done.is_empty() {
            return None;
        }
        Some(done.iter().sum::<Duration>() / done.len() as u32)
    }

    /// A deterministic one-line digest of the run: every simulation-domain
    /// number, and *no* wall-clock quantity — replaying the same options
    /// must yield the byte-identical string (the integration tests assert
    /// this).
    pub fn summary_string(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "stack={} seed={} plan={} injected={} expected={} delivered={} ratio={:.6} \
             hops={}/{} pulls={}/{}",
            self.stack,
            self.seed,
            self.plan_len,
            self.injected,
            self.expected,
            self.delivered,
            self.delivery_ratio(),
            self.hop_sum,
            self.hops,
            self.pull_deliveries,
            self.event_deliveries,
        );
        for w in &self.windows {
            let _ = write!(
                s,
                " w[{}ms]={}/{}",
                w.start.as_nanos() / 1_000_000,
                w.delivered,
                w.expected
            );
        }
        for r in &self.repairs {
            match r.repair {
                Some(d) => {
                    let _ = write!(
                        s,
                        " repair[{}@{}ms]={}ms",
                        r.label,
                        r.at.as_nanos() / 1_000_000,
                        d.as_millis()
                    );
                }
                None => {
                    let _ = write!(
                        s,
                        " repair[{}@{}ms]=never",
                        r.label,
                        r.at.as_nanos() / 1_000_000
                    );
                }
            }
        }
        let _ = write!(
            s,
            " orphans={} mean={}ms max={}ms oracle={}/{} {}",
            self.orphan_spells,
            self.orphan_mean.as_millis(),
            self.orphan_max.as_millis(),
            self.violations,
            self.oracle_records,
            kernel_digest(&self.kernel),
        );
        s
    }
}

/// Fraction of should-be-present, alive nodes attached to their stack's
/// dissemination structure ([`Stack::attached`]) at `t`.
fn attached_fraction<S: Stack<Event = GoCastEvent>>(
    sim: &Sim<S, ChaosRecorder>,
    presence: &PresenceTimeline,
    t: SimTime,
) -> f64 {
    let mut present = 0u32;
    let mut attached = 0u32;
    for (id, node) in sim.iter_nodes() {
        if !presence.present(id, t) || !sim.is_alive(id) {
            continue;
        }
        present += 1;
        if node.attached() {
            attached += 1;
        }
    }
    if present == 0 {
        1.0
    } else {
        attached as f64 / present as f64
    }
}

/// Runs one seeded chaos experiment for [`ExpOptions::stack`].
///
/// Both stacks get the same network, bootstrap graph shape, scenario
/// plan, seeds, injection schedule, and audit; only the protocol differs.
/// Stack-specific oracle checks are gated by [`Stack::capabilities`]
/// (Plumtree keeps no degree-bounded random/nearby split, so those checks
/// are skipped for it; the universal no-early/no-duplicate-delivery
/// checks always apply).
pub fn run_chaos(opts: &ExpOptions, scenario: &Scenario) -> ChaosOutcome {
    // Keep every message in the stores: the end-of-run audit reads them,
    // and the default 120 s garbage collection would erase the evidence
    // mid-run.
    let audit_gc = Duration::from_secs(3600);
    match opts.stack {
        StackKind::GoCast => {
            let cfg = GoCastConfig {
                gc_wait: audit_gc,
                ..GoCastConfig::default()
            };
            let oracle = InvariantOracle::for_protocol(&cfg);
            let links_per_node = (cfg.c_degree() / 2).max(1);
            run_chaos_with(
                opts,
                scenario,
                oracle,
                links_per_node,
                |id, links, members| {
                    GoCastNode::with_initial_links(id, cfg.clone(), links, members)
                },
            )
        }
        StackKind::Plumtree => {
            let cfg = PlumtreeConfig {
                gc_wait: audit_gc,
                ..PlumtreeConfig::default()
            };
            let ocfg = OracleConfig {
                check_degree_bounds: true,
                check_pull_after_delivery: true,
                ..OracleConfig::universal()
            }
            .with_caps(&PlumtreeNode::capabilities());
            let oracle = InvariantOracle::new(ocfg);
            let links_per_node = (cfg.active_view / 2).max(1);
            run_chaos_with(
                opts,
                scenario,
                oracle,
                links_per_node,
                |id, links, members| {
                    PlumtreeNode::with_initial_links(id, cfg.clone(), links, members)
                },
            )
        }
    }
}

/// The stack-generic chaos driver: warm the overlay up, compile and
/// schedule `scenario` (site groups come from the latency matrix, so
/// group faults are correlated site failures), inject the message
/// workload from nodes the plan says are present, sample attachment every
/// [`SLICE`], drain, and audit message stores against the presence
/// timeline.
pub fn run_chaos_with<S, F>(
    opts: &ExpOptions,
    scenario: &Scenario,
    oracle: InvariantOracle,
    links_per_node: usize,
    mut make: F,
) -> ChaosOutcome
where
    S: Stack<Event = GoCastEvent>,
    F: FnMut(NodeId, Vec<NodeId>, Vec<NodeId>) -> S,
{
    let net = build_network(opts);
    let groups: Vec<u32> = net.site_assignment().to_vec();
    let mut boot = bootstrap_random_graph(opts.nodes, links_per_node, opts.seed ^ 0xB007);
    let mut builder = SimBuilder::new(net).seed(opts.seed);
    if opts.metrics_out.is_some() {
        builder = builder.telemetry();
    }
    let mut stream = MetricsStream::for_opts(opts, None);
    let mut sim = builder.build_with(ChaosRecorder::with_oracle(oracle), |id| {
        let (links, members) = boot(id);
        make(id, links, members)
    });
    let chaos_snapshot = |sim: &Sim<S, ChaosRecorder>| {
        let mut snap = sim.metrics_snapshot();
        sim.recorder().proto.snapshot_into(&mut snap);
        snap
    };
    sim.run_until(SimTime::ZERO + opts.warmup);

    let env = ScenarioEnv::new(opts.nodes, opts.seed)
        .with_groups(&groups)
        .starting_at(sim.now());
    let plan = scenario.compile(&env);
    plan.schedule_into(&mut sim, |contact| S::cmd_join(contact), || S::cmd_leave());
    let presence = plan.presence();

    // Injections come from nodes the plan says are present at send time
    // (rejection sampling; the plan never empties the population).
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5EED);
    let start = sim.now() + Duration::from_millis(100);
    for i in 0..opts.messages {
        let at = start + Duration::from_secs_f64(i as f64 / opts.rate);
        let src = loop {
            let cand = NodeId::new(rng.gen_range(0..opts.nodes as u32));
            if presence.present(cand, at) {
                break cand;
            }
        };
        sim.schedule_command(at, src, S::cmd_multicast());
    }

    // Step in slices, sampling tree attachment for repair measurement.
    let end = plan
        .end()
        .unwrap_or(start)
        .max(start + opts.inject_duration())
        + opts.drain;
    let mut samples: Vec<(SimTime, f64)> = Vec::new();
    let mut t = sim.now();
    while t < end {
        t = (t + SLICE).min(end);
        sim.run_until(t);
        samples.push((t, attached_fraction(&sim, &presence, t)));
        if let Some(s) = &mut stream {
            s.sample(t, &chaos_snapshot(&sim));
        }
    }

    let final_now = sim.now();
    sim.recorder_mut().orphans.finish(final_now);
    sim.recorder_mut().oracle.finish();

    // Audit: a node owes a delivery of message `m` iff the plan says it
    // was present when `m` was injected and never departed afterwards.
    // `has_message` reads the actual store, independent of the event
    // stream the trackers saw.
    let rec = sim.recorder();
    let mut per_msg: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut expected = 0u64;
    let mut delivered = 0u64;
    for (id, at) in rec.recovery.injections() {
        let mut owed = 0u64;
        for n in 0..opts.nodes as u32 {
            let n = NodeId::new(n);
            if n == id.origin || !presence.present_from(n, at) {
                continue;
            }
            owed += 1;
            if sim.node(n).holds(id.origin, id.seq) {
                delivered += 1;
            }
        }
        expected += owed;
        per_msg.insert((id.origin.as_u32(), id.seq), owed);
    }
    let windows = rec
        .recovery
        .windowed_ratios(|id, _| per_msg[&(id.origin.as_u32(), id.seq)]);

    let repairs: Vec<BurstRepair> = plan
        .bursts()
        .iter()
        .map(|(at, label)| BurstRepair {
            at: *at,
            label: label.clone(),
            repair: samples
                .iter()
                .find(|(t, f)| t >= at && *f >= REPAIR_FRAC)
                .map(|(t, _)| t.saturating_since(*at)),
        })
        .collect();

    ChaosOutcome {
        stack: S::NAME,
        seed: opts.seed,
        plan_len: plan.len(),
        injected: rec.recovery.injected_count(),
        expected,
        delivered,
        windows,
        repairs,
        orphan_spells: rec.orphans.spells(),
        orphan_mean: rec.orphans.mean_spell(),
        orphan_max: rec.orphans.max_spell(),
        oracle_records: rec.oracle.records_checked(),
        violations: rec.oracle.violations().len(),
        violation_lines: rec
            .oracle
            .violations()
            .iter()
            .take(8)
            .map(|v| v.to_string())
            .collect(),
        hop_sum: rec.hop_sum,
        hops: rec.hops,
        pull_deliveries: rec.pull_deliveries,
        event_deliveries: rec.deliveries,
        kernel: sim.kernel_stats(),
        metrics: chaos_snapshot(&sim),
    }
}

/// Runs `run_chaos` across `seeds` consecutive seeds, fanned over
/// `opts.effective_jobs()` worker threads. Results come back in seed
/// order, so output is byte-identical at any job count.
pub fn chaos_sweep(opts: &ExpOptions, scenario: &Scenario, seeds: u64) -> Vec<ChaosOutcome> {
    assert!(seeds > 0, "need at least one seed");
    let runs: Vec<ExpOptions> = (0..seeds)
        .map(|i| opts.clone().with_seed(opts.seed.wrapping_add(i)))
        .collect();
    parallel_map(opts.effective_jobs(), runs, |_, o| run_chaos(&o, scenario))
}

/// The built-in scenario presets, keyed by `--scenario` name. Each is
/// sized relative to the option set's injection window (at least 30 s of
/// fault activity), so `--quick` runs stay quick. Returns `None` for an
/// unknown name; [`builtin_names`] lists the valid ones.
pub fn builtin_scenario(name: &str, opts: &ExpOptions) -> Option<Scenario> {
    let span = opts.inject_duration().max(Duration::from_secs(30));
    let crowd = (opts.nodes / 8).max(2);
    Some(match name {
        // Fault-free control: the scenario machinery runs but injects
        // nothing. Useful as the conformance/chaos reference point.
        "baseline" => Scenario::new(),
        // Paper §4 "dependability under churn": continuous Poisson
        // leave/rejoin at ~12 events/min while messages flow.
        "churn" => Scenario::new().churn(Duration::ZERO, span, 0.2, 0.2),
        // Paper §4.3 correlated failures: a whole site crashes at once
        // (the site of node 1, resolved through the latency matrix).
        "catastrophe" => Scenario::new().crash_group_of_at(span / 4, NodeId::new(1)),
        // Paper §2.4 / txt4 two-continent split: halves partition that
        // heals mid-run.
        "partition" => Scenario::new().partition_at(span / 4, span / 2, Split::Halves),
        // Flash crowd: an eighth of the population leaves, then rejoins
        // simultaneously.
        "flashcrowd" => Scenario::new()
            .mass_leave_at(span / 4, crowd)
            .flash_crowd_at(span / 2, crowd),
        // A degraded network: 1% message loss, 20 ms jitter, light churn.
        "lossy" => Scenario::new()
            .loss_at(Duration::ZERO, 0.01)
            .jitter_at(Duration::ZERO, Duration::from_millis(20))
            .churn(Duration::ZERO, span, 0.05, 0.05),
        _ => return None,
    })
}

/// Names accepted by [`builtin_scenario`].
pub fn builtin_names() -> &'static [&'static str] {
    &[
        "baseline",
        "churn",
        "catastrophe",
        "partition",
        "flashcrowd",
        "lossy",
    ]
}

/// Parses a scenario spec string: semicolon-separated `name(k=v,...)`
/// clauses, times in (fractional) seconds. The grammar (see DESIGN.md
/// "Fault model & scenarios" for the full reference):
///
/// ```text
/// churn(start=S,end=S,leave=R,join=R)   Poisson leave/join over [start,end)
/// massleave(at=S,count=N)               N simultaneous graceful leaves
/// flashcrowd(at=S,count=N)              N simultaneous rejoins
/// crash(at=S,node=I)                    crash one node
/// crashsite(at=S,node=I)                crash node I's whole site
/// partition(at=S,heal=S[,split=halves|group:G])
/// cutlink(at=S,a=I,b=I)  heallink(at=S,a=I,b=I)
/// loss(p=P[,at=S])                      per-message loss probability
/// jitter(ms=M[,at=S])                   max per-message latency jitter
/// protect(node=I)                       exempt from stochastic selection
/// floor(n=N)                            population floor for departures
/// ```
///
/// ```
/// use gocast_experiments::chaos::parse_spec;
///
/// let s = parse_spec(
///     "churn(start=0,end=60,leave=0.5,join=0.5); \
///      partition(at=20,heal=40,split=halves); loss(p=0.01)",
/// )
/// .unwrap();
/// assert_eq!(s.step_count(), 3);
/// assert!(parse_spec("explode(at=1)").is_err());
/// ```
pub fn parse_spec(spec: &str) -> Result<Scenario, String> {
    let mut s = Scenario::new();
    for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
        let (name, rest) = clause
            .split_once('(')
            .ok_or_else(|| format!("clause `{clause}` is not name(k=v,...)"))?;
        let args = rest
            .strip_suffix(')')
            .ok_or_else(|| format!("clause `{clause}` missing closing `)`"))?;
        let mut kv = BTreeMap::new();
        for pair in args.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("`{pair}` in `{clause}` is not k=v"))?;
            kv.insert(k.trim(), v.trim());
        }
        let f = |key: &str| -> Result<f64, String> {
            kv.get(key)
                .ok_or_else(|| format!("`{name}` needs `{key}=`"))?
                .parse::<f64>()
                .map_err(|e| format!("`{key}` in `{name}`: {e}"))
        };
        let f_or = |key: &str, default: f64| -> Result<f64, String> {
            match kv.get(key) {
                None => Ok(default),
                Some(v) => v
                    .parse::<f64>()
                    .map_err(|e| format!("`{key}` in `{name}`: {e}")),
            }
        };
        let secs = |key: &str| -> Result<Duration, String> {
            let v = f(key)?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("`{key}` in `{name}` must be a non-negative time"));
            }
            Ok(Duration::from_secs_f64(v))
        };
        let secs_or = |key: &str, default: f64| -> Result<Duration, String> {
            let v = f_or(key, default)?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("`{key}` in `{name}` must be a non-negative time"));
            }
            Ok(Duration::from_secs_f64(v))
        };
        let node = |key: &str| -> Result<NodeId, String> {
            Ok(NodeId::new(
                kv.get(key)
                    .ok_or_else(|| format!("`{name}` needs `{key}=`"))?
                    .parse::<u32>()
                    .map_err(|e| format!("`{key}` in `{name}`: {e}"))?,
            ))
        };
        let count = |key: &str| -> Result<usize, String> {
            kv.get(key)
                .ok_or_else(|| format!("`{name}` needs `{key}=`"))?
                .parse::<usize>()
                .map_err(|e| format!("`{key}` in `{name}`: {e}"))
        };
        s = match name.trim() {
            "churn" => {
                let (start, end) = (secs_or("start", 0.0)?, secs("end")?);
                let (leave, join) = (f("leave")?, f("join")?);
                if end < start {
                    return Err("churn `end` must not precede `start`".into());
                }
                if !(leave.is_finite() && leave >= 0.0 && join.is_finite() && join >= 0.0) {
                    return Err("churn rates must be finite and non-negative".into());
                }
                s.churn(start, end, leave, join)
            }
            "massleave" => s.mass_leave_at(secs("at")?, count("count")?),
            "flashcrowd" => s.flash_crowd_at(secs("at")?, count("count")?),
            "crash" => s.crash_at(secs("at")?, node("node")?),
            "crashsite" => s.crash_group_of_at(secs("at")?, node("node")?),
            "partition" => {
                let (at, heal) = (secs("at")?, secs("heal")?);
                if heal < at {
                    return Err("partition must heal after it forms".into());
                }
                let split = match kv.get("split").copied() {
                    None | Some("halves") => Split::Halves,
                    Some(v) => match v.strip_prefix("group:") {
                        Some(g) => Split::IsolateGroup(
                            g.parse::<u32>()
                                .map_err(|e| format!("partition split: {e}"))?,
                        ),
                        None => return Err(format!("unknown split `{v}` (halves | group:G)")),
                    },
                };
                s.partition_at(at, heal, split)
            }
            "cutlink" => s.cut_link_at(secs("at")?, node("a")?, node("b")?),
            "heallink" => s.heal_link_at(secs("at")?, node("a")?, node("b")?),
            "loss" => {
                let p = f("p")?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("loss probability {p} not in 0..=1"));
                }
                s.loss_at(secs_or("at", 0.0)?, p)
            }
            "jitter" => {
                let ms = f("ms")?;
                if !(ms.is_finite() && ms >= 0.0) {
                    return Err("jitter `ms` must be non-negative".into());
                }
                s.jitter_at(secs_or("at", 0.0)?, Duration::from_secs_f64(ms / 1000.0))
            }
            "protect" => s.protect(node("node")?),
            "floor" => s.min_present(count("n")?),
            other => {
                return Err(format!(
                    "unknown clause `{other}` (churn, massleave, flashcrowd, crash, crashsite, \
                     partition, cutlink, heallink, loss, jitter, protect, floor)"
                ))
            }
        };
    }
    Ok(s)
}

/// The `chaos` subcommand: resolve the scenario (`--spec` wins over
/// `--scenario`), run it over `seeds` consecutive seeds, print the
/// per-seed recovery table plus (for a single seed) the windowed
/// delivery-ratio series, and write `chaos.csv` / `chaos_windows.csv`.
/// Returns the outcomes for programmatic use (benches, tests).
pub fn chaos(
    opts: &ExpOptions,
    scenario_name: &str,
    spec: Option<&str>,
    seeds: u64,
) -> Vec<ChaosOutcome> {
    let scenario = match spec {
        Some(spec) => parse_spec(spec).unwrap_or_else(|e| {
            eprintln!("bad --spec: {e}");
            std::process::exit(2);
        }),
        None => builtin_scenario(scenario_name, opts).unwrap_or_else(|| {
            eprintln!(
                "unknown scenario `{scenario_name}` (one of: {})",
                builtin_names().join(", ")
            );
            std::process::exit(2);
        }),
    };
    eprintln!(
        "chaos `{}`: {} nodes, {} messages, {} seed(s), {} scenario step(s) ...",
        if spec.is_some() {
            "spec"
        } else {
            scenario_name
        },
        opts.nodes,
        opts.messages,
        seeds,
        scenario.step_count(),
    );

    let outcomes = chaos_sweep(opts, &scenario, seeds);

    let mut table = Table::new([
        "stack",
        "seed",
        "faults",
        "injected",
        "expected",
        "delivered",
        "ratio",
        "mean_hops",
        "recovery_frac",
        "mean_repair_ms",
        "orphan_mean_ms",
        "orphan_max_ms",
        "violations",
    ]);
    for o in &outcomes {
        table.row([
            o.stack.to_string(),
            o.seed.to_string(),
            o.plan_len.to_string(),
            o.injected.to_string(),
            o.expected.to_string(),
            o.delivered.to_string(),
            format!("{:.4}", o.delivery_ratio()),
            format!("{:.2}", o.mean_hops()),
            format!("{:.4}", o.recovery_fraction()),
            o.mean_repair()
                .map(|d| format!("{:.0}", d.as_secs_f64() * 1000.0))
                .unwrap_or_else(|| "-".into()),
            format!("{:.0}", o.orphan_mean.as_secs_f64() * 1000.0),
            format!("{:.0}", o.orphan_max.as_secs_f64() * 1000.0),
            o.violations.to_string(),
        ]);
    }
    let scenario_label = spec.unwrap_or(scenario_name);
    println!("{table}");
    opts.write_csv_for_scenario("chaos", &table, Some(scenario_label));

    for o in &outcomes {
        for r in &o.repairs {
            let when = fmt_secs(Duration::from_nanos(r.at.as_nanos()));
            match r.repair {
                Some(d) => println!(
                    "  seed {}: burst {} at {when}s: tree repaired in {} ms",
                    o.seed,
                    r.label,
                    fmt_ms(d)
                ),
                None => println!(
                    "  seed {}: burst {} at {when}s: tree NOT repaired within the run",
                    o.seed, r.label
                ),
            }
        }
    }

    if outcomes.len() == 1 {
        let o = &outcomes[0];
        let mut wins = Table::new([
            "window_start_s",
            "injected",
            "expected",
            "delivered",
            "ratio",
        ]);
        for w in &o.windows {
            wins.row([
                format!("{:.0}", w.start.as_nanos() as f64 / 1e9),
                w.injected.to_string(),
                w.expected.to_string(),
                w.delivered.to_string(),
                format!("{:.4}", w.ratio()),
            ]);
        }
        println!("{wins}");
        opts.write_csv_for_scenario("chaos_windows", &wins, Some(scenario_label));
    }

    let worst = outcomes
        .iter()
        .map(ChaosOutcome::delivery_ratio)
        .fold(f64::INFINITY, f64::min);
    let violations: usize = outcomes.iter().map(|o| o.violations).sum();
    for o in &outcomes {
        for line in &o.violation_lines {
            eprintln!("  violation [{} seed {}]: {line}", o.stack, o.seed);
        }
    }
    println!(
        "worst-seed delivery ratio {:.4}; invariant oracle: {} violation(s) across {} record(s)",
        worst,
        violations,
        outcomes.iter().map(|o| o.oracle_records).sum::<u64>()
    );
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_every_clause() {
        let s = parse_spec(
            "churn(start=1,end=9,leave=0.5,join=0.25); massleave(at=2,count=4); \
             flashcrowd(at=5,count=4); crash(at=3,node=7); crashsite(at=4,node=2); \
             partition(at=1,heal=2,split=group:3); cutlink(at=1,a=0,b=1); \
             heallink(at=2,a=0,b=1); loss(p=0.05,at=1); jitter(ms=15); \
             protect(node=0); floor(n=8)",
        )
        .unwrap();
        // protect/floor configure the scenario without adding steps.
        assert_eq!(s.step_count(), 10);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for (spec, needle) in [
            ("explode(at=1)", "unknown clause"),
            ("churn(start=5,end=1,leave=1,join=1)", "end"),
            ("churn(end=1,leave=x,join=1)", "leave"),
            ("loss(p=1.5)", "0..=1"),
            ("partition(at=5,heal=1)", "heal"),
            ("partition(at=1,heal=2,split=thirds)", "unknown split"),
            ("crash(at=1)", "node="),
            ("jitter(ms=-3)", "non-negative"),
            ("churn at=1", "name(k=v"),
            ("churn(at=1", "closing"),
            ("churn(at)", "k=v"),
        ] {
            let err = parse_spec(spec).unwrap_err();
            assert!(
                err.contains(needle),
                "spec `{spec}`: error `{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn builtins_compile_at_quick_scale() {
        let opts = ExpOptions::quick();
        let groups: Vec<u32> = (0..opts.nodes as u32).map(|i| i % 8).collect();
        for name in builtin_names() {
            let s = builtin_scenario(name, &opts).unwrap();
            let env = ScenarioEnv::new(opts.nodes, opts.seed).with_groups(&groups);
            let plan = s.compile(&env);
            // Stochastic presets (churn, lossy) may expand to nothing on an
            // unlucky seed; the deterministic ones always produce faults.
            if matches!(*name, "catastrophe" | "partition" | "flashcrowd") {
                assert!(!plan.is_empty(), "builtin `{name}` expands to no faults");
            }
        }
        assert!(builtin_scenario("nope", &opts).is_none());
    }

    #[test]
    fn tiny_chaos_run_delivers_and_replays_identically() {
        let mut opts = ExpOptions::quick();
        opts.nodes = 32;
        opts.sites = 32;
        opts.warmup = Duration::from_secs(15);
        opts.messages = 8;
        opts.rate = 2.0;
        opts.drain = Duration::from_secs(20);
        let scenario = parse_spec("churn(start=0,end=4,leave=0.5,join=0.5)").unwrap();
        let a = run_chaos(&opts, &scenario);
        assert_eq!(a.injected, 8);
        assert_eq!(a.violations, 0, "oracle must stay clean under churn");
        assert!(
            a.delivery_ratio() > 0.95,
            "delivery ratio {} too low",
            a.delivery_ratio()
        );
        let b = run_chaos(&opts, &scenario);
        assert_eq!(
            a.summary_string(),
            b.summary_string(),
            "same options must replay byte-identically"
        );
    }

    #[test]
    fn tiny_plumtree_chaos_run_delivers_and_replays_identically() {
        let mut opts = ExpOptions::quick().with_stack(StackKind::Plumtree);
        opts.nodes = 32;
        opts.sites = 32;
        opts.warmup = Duration::from_secs(15);
        opts.messages = 8;
        opts.rate = 2.0;
        opts.drain = Duration::from_secs(20);
        let scenario = parse_spec("churn(start=0,end=4,leave=0.5,join=0.5)").unwrap();
        let a = run_chaos(&opts, &scenario);
        assert_eq!(a.stack, "plumtree");
        assert_eq!(a.injected, 8);
        assert_eq!(a.violations, 0, "oracle must stay clean under churn");
        assert!(
            a.delivery_ratio() > 0.95,
            "delivery ratio {} too low",
            a.delivery_ratio()
        );
        let b = run_chaos(&opts, &scenario);
        assert_eq!(
            a.summary_string(),
            b.summary_string(),
            "same options must replay byte-identically"
        );
    }
}
