//! The `testnet` subcommand: sim-vs-wire conformance on real sockets.
//!
//! Runs the differential harness from `gocast_testnet::conformance` —
//! the same workload through the virtual-time simulator and through N
//! real loopback-UDP nodes — and fails (exit 1) if the two sides
//! disagree beyond tolerance or either trace violates a protocol
//! invariant.
//!
//! Because the wire side runs in *wall-clock* time, this experiment uses
//! its own deployment-scale defaults (16 nodes, 200 messages, 3 s
//! warm-up, 3 s drain, `gocast_testnet::deployment_config` cadences)
//! wherever the corresponding CLI flag was left at the simulation
//! default; explicit `--nodes/--messages/--warmup/--drain/--rate/--seed`
//! still win. `--scenario NAME` / `--spec STR` attach a chaos scenario,
//! compiled once and replayed identically on both sides.
//!
//! Environments that cannot bind loopback sockets (some sandboxes) are
//! reported and skipped with exit 0, so CI stays green without sockets.

use std::time::Duration;

use gocast_testnet::conformance::ConformanceOptions;
use gocast_testnet::{deployment_config, loopback_available};

use crate::chaos::{builtin_names, builtin_scenario, parse_spec};
use crate::ExpOptions;

/// Builds the conformance options the CLI flags resolve to (exposed for
/// tests; see the module docs for the defaulting rule).
pub fn resolve(
    opts: &ExpOptions,
    scenario: &str,
    spec: Option<&str>,
) -> Result<ConformanceOptions, String> {
    let d = ExpOptions::default();
    let mut conf = ConformanceOptions::new(
        if opts.nodes == d.nodes {
            16
        } else {
            opts.nodes
        },
        if opts.messages == d.messages {
            200
        } else {
            opts.messages as usize
        },
    )
    .with_seed(opts.seed);
    conf.warmup = if opts.warmup == d.warmup {
        Duration::from_secs(3)
    } else {
        opts.warmup
    };
    conf.drain = if opts.drain == d.drain {
        Duration::from_secs(3)
    } else {
        opts.drain
    };
    conf.rate = opts.rate;
    conf.protocol = deployment_config();
    if opts.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    conf.shards = opts.shards;

    let scenario = match spec {
        Some(s) => Some(parse_spec(s).map_err(|e| format!("--spec: {e}"))?),
        None => {
            let sc = builtin_scenario(scenario, opts).ok_or_else(|| {
                format!(
                    "unknown scenario `{scenario}` (valid: {})",
                    builtin_names().join(", ")
                )
            })?;
            // An empty scenario (the `baseline` preset) keeps the strict
            // delivery gate; attaching it would relax it for nothing.
            (sc.step_count() > 0).then_some(sc)
        }
    };
    if let Some(sc) = scenario {
        conf = conf.with_scenario(sc);
    }
    Ok(conf)
}

/// Runs the conformance harness and returns the process exit code.
pub fn testnet(opts: &ExpOptions, scenario: &str, spec: Option<&str>) -> i32 {
    if !loopback_available() {
        eprintln!("testnet: loopback UDP unavailable in this environment; skipping");
        return 0;
    }
    let conf = match resolve(opts, scenario, spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("testnet: {e}");
            return 2;
        }
    };
    eprintln!(
        "testnet: {} nodes, {} messages @ {:.0}/s, warmup {:?}, drain {:?}, seed {}, shards {}{}",
        conf.nodes,
        conf.messages,
        conf.rate,
        conf.warmup,
        conf.drain,
        conf.seed,
        conf.shards,
        if conf.scenario.is_some() {
            " (chaos scenario attached)"
        } else {
            ""
        }
    );
    let report = match conf.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("testnet: run failed: {e}");
            return 1;
        }
    };
    print!("{}", report.render());
    if let Some(snap) = &report.wire.wire_metrics {
        // One greppable line for CI: the batching economics of this run.
        let counter = |name: &str| {
            snap.entries()
                .iter()
                .find_map(|e| match (e.name == name, &e.value) {
                    (true, gocast_metrics::MetricValue::Counter(v)) => Some(*v),
                    _ => None,
                })
                .unwrap_or(0)
        };
        println!(
            "fabric: shards={} syscalls_saved={} sendmmsg_calls={} recvmmsg_calls={}",
            conf.shards,
            counter("fabric_syscalls_saved"),
            counter("fabric_sendmmsg_calls"),
            counter("fabric_recvmmsg_calls"),
        );
        crate::report::print_snapshot("wire metrics", snap);
        // `--metrics-out` on testnet captures the wire-side fabric
        // snapshot (manifest-stamped, one line) for offline comparison.
        let label = spec.unwrap_or(scenario);
        if let Some(mut stream) = crate::runners::MetricsStream::for_opts(opts, Some(label)) {
            let at = gocast_sim::SimTime::from_nanos(conf.total().as_nanos() as u64);
            stream.sample(at, snap);
        }
    }
    let failures = report.failures();
    if failures.is_empty() {
        println!("conformance: PASS");
        0
    } else {
        for f in &failures {
            println!("conformance FAIL: {f}");
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_to_deployment_scale() {
        let opts = ExpOptions::default();
        let conf = resolve(&opts, "baseline", None).unwrap();
        assert_eq!(conf.nodes, 16);
        assert_eq!(conf.messages, 200);
        assert_eq!(conf.warmup, Duration::from_secs(3));
        assert!(conf.scenario.is_none(), "baseline must stay strict");
        assert!(conf.tol.require_delivery);
    }

    #[test]
    fn explicit_flags_and_scenarios_win() {
        let opts = ExpOptions {
            nodes: 8,
            messages: 50,
            ..ExpOptions::default()
        };
        let conf = resolve(&opts, "partition", None).unwrap();
        assert_eq!(conf.nodes, 8);
        assert_eq!(conf.messages, 50);
        assert!(conf.scenario.is_some());
        assert!(
            !conf.tol.require_delivery,
            "chaos relaxes the delivery gate"
        );
        assert!(resolve(&opts, "nonsense", None).is_err());
    }
}
