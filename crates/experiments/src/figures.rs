//! One function per paper figure / reported claim. Each returns the
//! [`Table`]s it printed, so the CLI, benches, and tests share one code
//! path. See DESIGN.md for the experiment index.

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig};
use gocast_analysis::{diameter, fmt_ms, fmt_secs, Cdf, MetricsRecorder, Table};
use gocast_baselines::{
    prob_all_nodes_hear, prob_all_nodes_hear_all, PushGossipConfig, PushGossipNode,
};
use gocast_net::{AsTopology, LinkStress};
use gocast_sim::{NodeId, SimBuilder, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::options::ExpOptions;
use crate::report::log_kernel;
use crate::runners::{
    build_gocast_sim, build_network, overlay_latency_breakdown, resilience_q, run_adaptation,
    run_delay, DelayStats, Proto,
};

/// Percentiles reported for delay CDFs.
const DELAY_PCTS: [(f64, &str); 6] = [
    (0.10, "p10"),
    (0.50, "p50"),
    (0.90, "p90"),
    (0.99, "p99"),
    (1.00, "max"),
    (-1.0, "mean"),
];

fn delay_row(stats: &DelayStats) -> Vec<String> {
    let mut row = vec![stats.protocol.clone()];
    let complete = stats.live_nodes - stats.incomplete_nodes;
    row.push(format!(
        "{:.4}",
        complete as f64 / stats.live_nodes.max(1) as f64
    ));
    for (p, _) in DELAY_PCTS {
        if stats.per_node_avg.is_empty() {
            row.push("-".into());
        } else if p < 0.0 {
            row.push(fmt_secs(stats.per_node_avg.mean()));
        } else {
            row.push(fmt_secs(stats.per_node_avg.percentile(p)));
        }
    }
    row.push(format!("{:.4}", stats.redundancy));
    row.push(stats.pulls.to_string());
    row
}

fn delay_table() -> Table {
    let mut headers = vec!["protocol".to_string(), "complete".to_string()];
    headers.extend(DELAY_PCTS.iter().map(|(_, n)| format!("{n}(s)")));
    headers.push("redundancy".into());
    headers.push("pulls".into());
    Table::new(headers)
}

/// Figure 1: analytic gossip reliability vs fanout, plus an empirical
/// validation run of the push-gossip baseline.
pub fn fig1(opts: &ExpOptions) -> Vec<Table> {
    let n = opts.nodes;
    let mut t = Table::new(["fanout", "P(all hear 1 msg)", "P(all hear 1000 msgs)"]);
    for f in 4..=20 {
        t.row([
            f.to_string(),
            format!("{:.6}", prob_all_nodes_hear(n, f as f64)),
            format!("{:.6}", prob_all_nodes_hear_all(n, f as f64, 1000)),
        ]);
    }
    println!("Figure 1 — push-gossip reliability (analytic), n = {n}:\n{t}");
    opts.write_csv("fig1_analytic", &t);

    // Empirical: run the baseline and measure misses and hear counts.
    let net = build_network(opts);
    let cfg = PushGossipConfig::default();
    let mut sim = SimBuilder::new(net)
        .seed(opts.seed)
        .build_with(MetricsRecorder::new(), |id| {
            PushGossipNode::new(id, cfg.clone())
        });
    sim.run_until(SimTime::from_secs(1));
    let msgs = opts.messages.min(50);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xF16);
    for i in 0..msgs {
        let src = NodeId::new(rng.gen_range(0..opts.nodes as u32));
        sim.schedule_command(
            SimTime::from_secs(1) + Duration::from_secs_f64(i as f64 / opts.rate),
            src,
            GoCastCommand::Multicast,
        );
    }
    sim.run_until(SimTime::from_secs(1) + opts.inject_duration() + opts.drain);
    log_kernel(&sim.kernel_stats());

    // Misses: every injected message should reach the other n-1 nodes.
    let delivered = sim.recorder().delivered();
    let expected = msgs as u64 * (opts.nodes as u64 - 1);
    let missing = expected.saturating_sub(delivered);
    let max_hears = sim
        .iter_nodes()
        .map(|(_, node)| node.max_times_heard())
        .max()
        .unwrap_or(0);
    let mut t2 = Table::new(["metric", "measured", "analytic"]);
    t2.row([
        "miss fraction (F=5)".to_string(),
        format!("{:.5}", missing as f64 / expected as f64),
        format!("{:.5} (e^-5)", (-5.0f64).exp()),
    ]);
    t2.row([
        "max gossip hears".to_string(),
        max_hears.to_string(),
        "~19 (paper, tail of Poisson(5))".to_string(),
    ]);
    println!("Figure 1 — empirical validation ({msgs} msgs, n = {n}):\n{t2}");
    opts.write_csv("fig1_empirical", &t2);
    vec![t, t2]
}

/// Figures 3(a)/3(b): per-node average delay across the five protocols,
/// with `fail_frac` of nodes crashed (and repair frozen) at measurement
/// start.
pub fn fig3(opts: &ExpOptions, fail_frac: f64) -> Vec<Table> {
    let protos = [
        Proto::GoCast(GoCastConfig::default()),
        Proto::GoCast(GoCastConfig::proximity_overlay()),
        Proto::GoCast(GoCastConfig::random_overlay()),
        Proto::PushGossip(PushGossipConfig::default()),
        Proto::PushGossip(PushGossipConfig::no_wait()),
    ];
    let mut t = delay_table();
    let mut gocast_mean = None;
    let mut gossip_mean = None;
    // The five protocol runs are independent simulations; fan them across
    // `--jobs` workers. Results come back in protocol order, so the table
    // (and its CSV) is byte-identical to a serial run.
    let results = crate::sweep::parallel_map(opts.effective_jobs(), protos.to_vec(), |_, proto| {
        let label = proto.label();
        eprintln!("  running {label} (fail = {fail_frac}) ...");
        run_delay(opts, proto, fail_frac)
    });
    for stats in results {
        let label = stats.protocol.clone();
        log_kernel(&stats.kernel);
        if !stats.per_node_avg.is_empty() {
            if label == "GoCast" {
                gocast_mean = Some(stats.per_node_avg.mean());
            }
            if label.starts_with("gossip") {
                gossip_mean = Some(stats.per_node_avg.mean());
            }
        }
        t.row(delay_row(&stats));
    }
    let name = if fail_frac > 0.0 { "fig3b" } else { "fig3a" };
    println!(
        "Figure 3{} — per-node average delivery delay, n = {}, {}% failed:\n{t}",
        if fail_frac > 0.0 { "(b)" } else { "(a)" },
        opts.nodes,
        (fail_frac * 100.0) as u32
    );
    if let (Some(g), Some(p)) = (gocast_mean, gossip_mean) {
        println!(
            "  speedup GoCast vs gossip: {:.1}x (paper: {}x)\n",
            p.as_secs_f64() / g.as_secs_f64(),
            if fail_frac > 0.0 { "2.3" } else { "8.9" }
        );
    }
    opts.write_csv(name, &t);
    vec![t]
}

/// Figure 4: GoCast delay at two system sizes, without and with 20%
/// failures.
pub fn fig4(opts: &ExpOptions, sizes: &[usize]) -> Vec<Table> {
    // All (failure fraction, size) runs are independent; fan the whole
    // grid across `--jobs` workers and stitch the tables back in order.
    let combos: Vec<(f64, usize)> = [0.0, 0.2]
        .iter()
        .flat_map(|&fail| sizes.iter().map(move |&n| (fail, n)))
        .collect();
    let results = crate::sweep::parallel_map(opts.effective_jobs(), combos, |_, (fail, n)| {
        let o = opts.clone().with_nodes(n);
        eprintln!("  running GoCast n = {n}, fail = {fail} ...");
        let mut stats = run_delay(&o, Proto::GoCast(GoCastConfig::default()), fail);
        stats.protocol = format!("GoCast n={n}");
        stats
    });
    let mut results = results.into_iter();
    let mut tables = Vec::new();
    for &fail in &[0.0, 0.2] {
        let mut t = delay_table();
        for _ in sizes {
            let stats = results.next().expect("one result per (fail, size) combo");
            log_kernel(&stats.kernel);
            t.row(delay_row(&stats));
        }
        println!(
            "Figure 4{} — GoCast scalability, {}% failed:\n{t}",
            if fail > 0.0 { "(b)" } else { "(a)" },
            (fail * 100.0) as u32
        );
        opts.write_csv(if fail > 0.0 { "fig4b" } else { "fig4a" }, &t);
        tables.push(t);
    }
    tables
}

/// Figure 5(a): node-degree distribution at snapshot times.
pub fn fig5a(opts: &ExpOptions) -> Vec<Table> {
    let snap_times = [0, 5, opts.warmup.as_secs()];
    let res = run_adaptation(opts, &GoCastConfig::default(), &snap_times, 0);
    log_kernel(&res.kernel);
    let max_deg = res
        .degree_hists
        .iter()
        .map(|(_, h)| h.max_value())
        .max()
        .unwrap_or(0);
    let mut headers = vec!["degree".to_string()];
    headers.extend(snap_times.iter().map(|s| format!("t={s}s")));
    let mut t = Table::new(headers);
    for d in 0..=max_deg {
        let mut row = vec![d.to_string()];
        for (_, h) in &res.degree_hists {
            row.push(format!("{:.4}", h.cumulative_fraction(d)));
        }
        t.row(row);
    }
    println!(
        "Figure 5(a) — cumulative degree distribution over time (n = {}):\n{t}",
        opts.nodes
    );
    for (s, h) in &res.degree_hists {
        println!(
            "  t={s}s: {:.0}% of nodes at degree 6, mean degree {:.2}",
            h.fraction(6) * 100.0,
            h.mean()
        );
    }
    println!();
    opts.write_csv("fig5a", &t);
    vec![t]
}

/// Figure 5(b): average overlay / tree link latency over the first
/// `latency_secs` seconds.
pub fn fig5b(opts: &ExpOptions, latency_secs: u64) -> Vec<Table> {
    let res = run_adaptation(opts, &GoCastConfig::default(), &[], latency_secs);
    log_kernel(&res.kernel);
    let mut t = Table::new([
        "t(s)",
        "overlay link latency (ms)",
        "tree link latency (ms)",
    ]);
    for (s, overlay, tree) in &res.latency_series {
        t.row([s.to_string(), fmt_ms(*overlay), fmt_ms(*tree)]);
    }
    println!(
        "Figure 5(b) — link latency adaptation (n = {}), every 10th sample:",
        opts.nodes
    );
    let mut short = Table::new(["t(s)", "overlay (ms)", "tree (ms)"]);
    for (s, overlay, tree) in res.latency_series.iter().step_by(10) {
        short.row([s.to_string(), fmt_ms(*overlay), fmt_ms(*tree)]);
    }
    println!("{short}");
    if let Some((_, overlay, tree)) = res.latency_series.last() {
        println!(
            "  final: overlay {} ms, tree {} ms (paper: tree 15.5 ms vs 91 ms random mean)\n",
            fmt_ms(*overlay),
            fmt_ms(*tree)
        );
    }
    opts.write_csv("fig5b", &t);
    vec![t]
}

/// Figure 6: largest live component fraction vs failure ratio, for
/// different numbers of random links per node (total degree fixed at 6).
pub fn fig6(opts: &ExpOptions) -> Vec<Table> {
    let c_rands = [0usize, 1, 2, 4];
    let fracs = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];
    let mut headers = vec!["failed fraction".to_string()];
    headers.extend(c_rands.iter().map(|c| format!("q (C_rand={c})")));
    let mut t = Table::new(headers);
    let mut snaps = Vec::new();
    for &c in &c_rands {
        let cfg = GoCastConfig::default().with_degrees(c, 6 - c);
        eprintln!("  adapting overlay with C_rand = {c} ...");
        let res = run_adaptation(opts, &cfg, &[], 0);
        log_kernel(&res.kernel);
        snaps.push(res.final_snapshot);
    }
    for &f in &fracs {
        let mut row = vec![format!("{f:.2}")];
        for snap in &snaps {
            row.push(format!("{:.4}", resilience_q(snap, f, 5, opts.seed)));
        }
        t.row(row);
    }
    println!(
        "Figure 6 — largest component after failures (n = {}):\n{t}",
        opts.nodes
    );
    opts.write_csv("fig6", &t);
    vec![t]
}

/// §3 summary (1): link changes per second decay as the overlay
/// stabilizes.
pub fn ext1(opts: &ExpOptions) -> Vec<Table> {
    let res = run_adaptation(opts, &GoCastConfig::default(), &[], 0);
    log_kernel(&res.kernel);
    let mut t = Table::new(["t(s)", "link changes/s"]);
    for (s, &c) in res.link_changes_per_sec.iter().enumerate() {
        t.row([s.to_string(), c.to_string()]);
    }
    println!("§3(1) — link changes per second (n = {}):", opts.nodes);
    let mut short = Table::new(["t(s)", "changes/s"]);
    let series = &res.link_changes_per_sec;
    for (s, &c) in series
        .iter()
        .enumerate()
        .step_by((series.len() / 12).max(1))
    {
        short.row([s.to_string(), c.to_string()]);
    }
    println!("{short}");
    let early: u64 = series.iter().take(5).sum();
    let late: u64 = series.iter().rev().take(5).sum();
    println!("  first 5 s: {early} changes; last 5 s: {late} changes\n");
    opts.write_csv("ext1", &t);
    vec![t]
}

/// §3 summary (2): mean overlay link latency vs number of random links.
pub fn ext2(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new([
        "C_rand",
        "mean overlay (ms)",
        "random links (ms)",
        "nearby links (ms)",
    ]);
    for c in 0..=4usize {
        let cfg = GoCastConfig::default().with_degrees(c, 6 - c);
        eprintln!("  adapting overlay with C_rand = {c} ...");
        let res = run_adaptation(opts, &cfg, &[], 0);
        log_kernel(&res.kernel);
        let net = build_network(opts);
        let (all, rand, near) = overlay_latency_breakdown(&res.final_snapshot, &net);
        t.row([
            c.to_string(),
            fmt_ms(all),
            if c == 0 { "-".into() } else { fmt_ms(rand) },
            fmt_ms(near),
        ]);
    }
    println!(
        "§3(2) — overlay link latency vs random links (n = {}):\n{t}",
        opts.nodes
    );
    opts.write_csv("ext2", &t);
    vec![t]
}

/// §3 summary (3): overlay diameter vs system size.
pub fn ext3(opts: &ExpOptions, sizes: &[usize]) -> Vec<Table> {
    let mut t = Table::new(["nodes", "diameter (hops)", "mean degree"]);
    for &n in sizes {
        let o = opts.clone().with_nodes(n);
        eprintln!("  adapting overlay with n = {n} ...");
        let res = run_adaptation(&o, &GoCastConfig::default(), &[], 0);
        log_kernel(&res.kernel);
        let adj = res.final_snapshot.overlay_adjacency();
        let alive = vec![true; n];
        t.row([
            n.to_string(),
            diameter(&adj, &alive).to_string(),
            format!("{:.2}", res.mean_degree),
        ]);
    }
    println!("§3(3) — overlay diameter vs size (paper: 6 -> 10 hops for 256 -> 8192):\n{t}");
    opts.write_csv("ext3", &t);
    vec![t]
}

/// §3 summary (4): bottleneck physical-link stress, GoCast vs gossip.
pub fn ext4(opts: &ExpOptions) -> Vec<Table> {
    let net_probe = build_network(opts);
    let sites = net_probe.site_count();
    // A transit-stub topology aligned with the latency clusters: this is
    // the shape where latency proximity and AS-path locality correlate, as
    // on the real Internet — exactly what GoCast's proximity-aware links
    // exploit and what random gossip is oblivious to.
    let regions = 6;
    let stubs_per_region = (sites / 250).clamp(2, 8);
    let topo = AsTopology::transit_stub(&net_probe, regions, stubs_per_region, opts.seed ^ 0xA5);
    let as_count = topo.as_count();

    let mut t = Table::new([
        "protocol",
        "bottleneck stress (KB)",
        "mean link stress (KB)",
        "links used",
        "total traffic (MB)",
    ]);
    let mut maxes = Vec::new();
    let classify = |l: (u32, u32)| {
        let t = |v: u32| (v as usize) < regions;
        match (t(l.0), t(l.1)) {
            (true, true) => "core",
            (true, false) | (false, true) => "regional uplink",
            _ => "stub-stub",
        }
    };

    // GoCast with pair tracking; exclude warm-up traffic.
    for &payload in &[1024u32, 64] {
        eprintln!("  running GoCast stress (payload {payload} B) ...");
        let cfg = GoCastConfig::default().with_payload_size(payload);
        let mut sim = build_gocast_sim(opts, &cfg, true);
        sim.run_until(SimTime::ZERO + opts.warmup);
        sim.reset_stats();
        let start = sim.now() + Duration::from_millis(100);
        let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5EED);
        for i in 0..opts.messages {
            let at = start + Duration::from_secs_f64(i as f64 / opts.rate);
            let src = NodeId::new(rng.gen_range(0..opts.nodes as u32));
            sim.schedule_command(at, src, GoCastCommand::Multicast);
        }
        sim.run_until(start + opts.inject_duration() + opts.drain);
        log_kernel(&sim.kernel_stats());
        {
            let pairs = sim.stats().pair_counts().expect("pair tracking enabled");
            let stress = LinkStress::from_pair_counts(&topo, &net_probe, pairs);
            maxes.push(stress.max());
            for (l, bytes) in stress.top_k(3) {
                eprintln!(
                    "    GoCast hot link {:?} ({}): {:.1} MB",
                    l,
                    classify(l),
                    bytes as f64 / 1e6
                );
            }
            t.row([
                format!("GoCast ({payload} B)"),
                format!("{:.1}", stress.max() as f64 / 1e3),
                format!("{:.1}", stress.mean_over_used() / 1e3),
                stress.links_used().to_string(),
                format!("{:.2}", stress.total() as f64 / 1e6),
            ]);
        }
    }

    // Push gossip, fanout 5.
    for &payload in &[1024u32, 64] {
        eprintln!("  running gossip stress (payload {payload} B) ...");
        let gcfg = PushGossipConfig {
            payload_size: payload,
            ..Default::default()
        };
        let net = build_network(opts);
        let mut sim = SimBuilder::new(net)
            .seed(opts.seed)
            .track_pair_counts()
            .build_with(MetricsRecorder::new(), |id| {
                PushGossipNode::new(id, gcfg.clone())
            });
        sim.run_until(SimTime::from_secs(2));
        sim.reset_stats();
        let start = sim.now() + Duration::from_millis(100);
        let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5EED);
        for i in 0..opts.messages {
            let at = start + Duration::from_secs_f64(i as f64 / opts.rate);
            let src = NodeId::new(rng.gen_range(0..opts.nodes as u32));
            sim.schedule_command(at, src, GoCastCommand::Multicast);
        }
        sim.run_until(start + opts.inject_duration() + opts.drain);
        log_kernel(&sim.kernel_stats());
        {
            let pairs = sim.stats().pair_counts().expect("pair tracking enabled");
            let stress = LinkStress::from_pair_counts(&topo, &net_probe, pairs);
            maxes.push(stress.max());
            for (l, bytes) in stress.top_k(3) {
                eprintln!(
                    "    gossip hot link {:?} ({}): {:.1} MB",
                    l,
                    classify(l),
                    bytes as f64 / 1e6
                );
            }
            t.row([
                format!("gossip F=5 ({payload} B)"),
                format!("{:.1}", stress.max() as f64 / 1e3),
                format!("{:.1}", stress.mean_over_used() / 1e3),
                stress.links_used().to_string(),
                format!("{:.2}", stress.total() as f64 / 1e6),
            ]);
        }
    }

    println!(
        "§3(4) — physical link stress over {as_count} ASes (n = {}):\n{t}",
        opts.nodes
    );
    if maxes.len() == 4 && maxes[0] > 0 && maxes[1] > 0 {
        println!(
            "  bottleneck reduction: {:.1}x at 1 KB payloads, {:.1}x at 64 B (paper: 4-7x)\n",
            maxes[2] as f64 / maxes[0] as f64,
            maxes[3] as f64 / maxes[1] as f64
        );
    }
    opts.write_csv("ext4", &t);
    vec![t]
}

/// §3 summary (5): raising the gossip fanout barely improves delay.
pub fn ext5(opts: &ExpOptions) -> Vec<Table> {
    let mut t = delay_table();
    let mut means: Vec<(usize, Duration)> = Vec::new();
    for fanout in [5usize, 9, 15] {
        eprintln!("  running gossip with fanout {fanout} ...");
        let stats = run_delay(
            opts,
            Proto::PushGossip(PushGossipConfig::default().with_fanout(fanout)),
            0.0,
        );
        log_kernel(&stats.kernel);
        if !stats.per_node_avg.is_empty() {
            means.push((fanout, stats.per_node_avg.mean()));
        }
        t.row(delay_row(&stats));
    }
    println!("§3(5) — gossip delay vs fanout (n = {}):\n{t}", opts.nodes);
    if means.len() >= 2 {
        let base = means[0].1.as_secs_f64();
        for (f, m) in &means[1..] {
            println!(
                "  fanout {}: delay change {:+.1}% vs fanout 5 (paper: 9 -> ~-5%, 15 -> ~0%)",
                f,
                (m.as_secs_f64() - base) / base * 100.0
            );
        }
        println!();
    }
    opts.write_csv("ext5", &t);
    vec![t]
}

/// §2.1 claim: redundancy 1.02 without the pull delay, ~1.0005 with
/// `f` = 0.3 s.
pub fn txt1(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new(["pull delay f", "redundancy", "mean delay (s)", "pulls"]);
    for f_ms in [0u64, 300] {
        let cfg = GoCastConfig::default().with_pull_delay(Duration::from_millis(f_ms));
        eprintln!("  running GoCast with f = {f_ms} ms ...");
        let stats = run_delay(opts, Proto::GoCast(cfg), 0.0);
        log_kernel(&stats.kernel);
        t.row([
            format!("{} ms", f_ms),
            format!("{:.4}", stats.redundancy),
            if stats.per_node_avg.is_empty() {
                "-".into()
            } else {
                fmt_secs(stats.per_node_avg.mean())
            },
            stats.pulls.to_string(),
        ]);
    }
    println!("§2.1 (txt1) — redundant receptions vs pull delay (paper: 1.02 -> 1.0005):\n{t}");
    opts.write_csv("txt1", &t);
    vec![t]
}

/// §2.2 claim: the degree-balancing rules leave ~88%/12% of nodes at
/// `C_rand`/`C_rand`+1 and ~70%/30% at `C_near`/`C_near`+1.
pub fn txt2(opts: &ExpOptions) -> Vec<Table> {
    let cfg = GoCastConfig::default();
    let res = run_adaptation(opts, &cfg, &[], 0);
    log_kernel(&res.kernel);
    let mut t = Table::new(["quantity", "at target", "at target+1", "paper"]);
    t.row([
        format!("random degree (C_rand = {})", cfg.c_rand),
        format!("{:.1}%", res.rand_hist.fraction(cfg.c_rand) * 100.0),
        format!("{:.1}%", res.rand_hist.fraction(cfg.c_rand + 1) * 100.0),
        "88% / 12%".to_string(),
    ]);
    t.row([
        format!("nearby degree (C_near = {})", cfg.c_near),
        format!("{:.1}%", res.near_hist.fraction(cfg.c_near) * 100.0),
        format!("{:.1}%", res.near_hist.fraction(cfg.c_near + 1) * 100.0),
        "70% / 30%".to_string(),
    ]);
    println!(
        "§2.2 (txt2) — degree split after adaptation (n = {}):\n{t}",
        opts.nodes
    );
    opts.write_csv("txt2", &t);
    vec![t]
}

/// §2.2 claim: without random links the overlay partitions even with no
/// failures — demonstrated on the paper's own thought experiment: two
/// well-separated continents ("500 nodes in America and 500 nodes in
/// Asia"). With `C_rand` = 1 the ~n/2 random links bridge the continents.
pub fn txt4(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new([
        "C_rand",
        "components",
        "largest component q",
        "cross-continent links",
    ]);
    for c_rand in [0usize, 1] {
        let cfg = GoCastConfig::default().with_degrees(c_rand, 6 - c_rand);
        eprintln!("  adapting two-continent overlay with C_rand = {c_rand} ...");
        let net = gocast_net::two_continents(opts.nodes, opts.seed ^ 0x2C);
        let mut boot =
            gocast::bootstrap_random_graph(opts.nodes, cfg.c_degree() / 2, opts.seed ^ 0xB007);
        let mut sim =
            SimBuilder::new(net)
                .seed(opts.seed)
                .build_with(MetricsRecorder::new(), |id| {
                    let (links, members) = boot(id);
                    gocast::GoCastNode::with_initial_links(id, cfg.clone(), links, members)
                });
        sim.run_until(SimTime::ZERO + opts.warmup);
        log_kernel(&sim.kernel_stats());
        let snap = gocast::snapshot(&sim);
        let adj = snap.overlay_adjacency();
        let alive = vec![true; opts.nodes];
        let comps = gocast_analysis::component_sizes(&adj, &alive);
        let q = gocast_analysis::largest_component_fraction(&adj, &alive);
        let half = (opts.nodes / 2) as u32;
        let crossings = snap
            .overlay_edges
            .iter()
            .filter(|&&(a, b, _)| (a < half) != (b < half))
            .count();
        t.row([
            c_rand.to_string(),
            comps.len().to_string(),
            format!("{q:.4}"),
            crossings.to_string(),
        ]);
    }
    println!(
        "§2.2 (txt4) — two-continent partition test (n = {}; paper: C_rand=0 partitions, C_rand=1 connects):\n{t}",
        opts.nodes
    );
    opts.write_csv("txt4", &t);
    vec![t]
}

/// Ablations of the design choices DESIGN.md calls out: C4 on/off,
/// aggressive drop threshold, and the C1 lower bound.
pub fn ablations(opts: &ExpOptions) -> Vec<Table> {
    let variants: [(&str, GoCastConfig); 4] = [
        ("paper defaults", GoCastConfig::default()),
        (
            "aggressive drop (C_near+1)",
            GoCastConfig {
                aggressive_drop: true,
                ..Default::default()
            },
        ),
        (
            "C4 disabled",
            GoCastConfig {
                c4_enabled: false,
                ..Default::default()
            },
        ),
        (
            "C1 bound = C_near",
            GoCastConfig {
                c1_offset: 0,
                ..Default::default()
            },
        ),
    ];
    let mut t = Table::new([
        "variant",
        "total link changes",
        "late changes/s",
        "mean overlay (ms)",
        "mean tree (ms)",
    ]);
    let mut baseline_changes = None;
    for (name, cfg) in variants {
        eprintln!("  adapting with {name} ...");
        let res = run_adaptation(opts, &cfg, &[], 0);
        log_kernel(&res.kernel);
        let total: u64 = res.link_changes_per_sec.iter().sum();
        let late: u64 = res.link_changes_per_sec.iter().rev().take(10).sum();
        let net = build_network(opts);
        let overlay = res.final_snapshot.mean_overlay_latency(&net);
        let tree = res.final_snapshot.mean_tree_latency(&net);
        if baseline_changes.is_none() {
            baseline_changes = Some(total);
        }
        t.row([
            name.to_string(),
            total.to_string(),
            format!("{:.1}", late as f64 / 10.0),
            fmt_ms(overlay),
            fmt_ms(tree),
        ]);
    }
    println!(
        "Ablations — overlay maintenance design choices (n = {}):\n{t}",
        opts.nodes
    );
    opts.write_csv("ablations", &t);
    vec![t]
}

/// Future-work evaluation: the paper defers "dynamic tuning of r" (and
/// suggests tuning the gossip period to the message rate). This experiment
/// measures how much idle-period overhead the adaptive periods save and
/// verifies dissemination quality is unchanged.
pub fn adaptive(opts: &ExpOptions) -> Vec<Table> {
    let mut t = Table::new([
        "variant",
        "idle msgs/node/s",
        "idle probe msgs",
        "idle gossip msgs",
        "mean delay (s)",
        "complete",
    ]);
    for adaptive in [false, true] {
        let cfg = GoCastConfig {
            adaptive_gossip: adaptive,
            adaptive_maintenance: adaptive,
            ..Default::default()
        };
        eprintln!("  running adaptive = {adaptive} ...");
        let mut sim = build_gocast_sim(opts, &cfg, false);
        sim.run_until(SimTime::ZERO + opts.warmup);
        // Quiet period.
        sim.reset_stats();
        let quiet = Duration::from_secs(60.min(opts.warmup.as_secs().max(10)));
        sim.run_for(quiet);
        let idle_total = sim.stats().total().messages;
        let idle_probe = sim.stats().class(gocast_sim::TrafficClass::Probe).messages;
        let idle_gossip = sim.stats().class(gocast_sim::TrafficClass::Gossip).messages;
        // Message phase.
        let start = sim.now() + Duration::from_millis(100);
        let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5EED);
        for i in 0..opts.messages {
            let at = start + Duration::from_secs_f64(i as f64 / opts.rate);
            let src = NodeId::new(rng.gen_range(0..opts.nodes as u32));
            sim.schedule_command(at, src, GoCastCommand::Multicast);
        }
        sim.run_until(start + opts.inject_duration() + opts.drain);
        log_kernel(&sim.kernel_stats());
        let live: Vec<NodeId> = sim.alive_nodes().collect();
        let (avg, incomplete) = sim
            .recorder()
            .per_node_average_delays(opts.messages as u64, &live);
        t.row([
            if adaptive {
                "adaptive t and r"
            } else {
                "fixed t and r"
            }
            .to_string(),
            format!(
                "{:.1}",
                idle_total as f64 / opts.nodes as f64 / quiet.as_secs_f64()
            ),
            idle_probe.to_string(),
            idle_gossip.to_string(),
            if avg.is_empty() {
                "-".into()
            } else {
                fmt_secs(avg.mean())
            },
            format!(
                "{:.4}",
                (live.len() - incomplete) as f64 / live.len() as f64
            ),
        ]);
    }
    println!(
        "Future work — adaptive gossip/maintenance periods (n = {}):\n{t}",
        opts.nodes
    );
    opts.write_csv("adaptive", &t);
    vec![t]
}

/// Empirical Cdf helper exposed for tests.
pub fn empty_or_mean(cdf: &Cdf) -> Option<Duration> {
    if cdf.is_empty() {
        None
    } else {
        Some(cdf.mean())
    }
}

/// `trace` subcommand: a Figure 3-style GoCast dissemination run with the
/// causal JSONL trace enabled, then offline analysis of the trace it just
/// wrote — per-message dissemination-tree reconstruction, hop-count and
/// per-hop latency breakdowns, the tree-vs-pull recovery fraction, and the
/// protocol invariant oracle. Returns the violations found so the CLI can
/// exit nonzero on a broken invariant.
///
/// With `fail_frac = 0` this is the paper's no-failure run (recovery
/// fraction near zero); with `fail_frac = 0.2` it measures how much of
/// Figure 3(b)'s coverage the gossip/pull path supplies.
pub fn trace_run(opts: &ExpOptions, fail_frac: f64) -> Vec<gocast_analysis::Violation> {
    use gocast_analysis::trace::{scan_trace, InvariantOracle, TraceAnalysis};

    let mut opts = opts.clone();
    if opts.trace_out.is_none() {
        let dir = opts
            .out_dir
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        opts.trace_out = Some(dir.join("trace.jsonl"));
    }
    let trace_path = opts.trace_out.clone().expect("set above");
    if let Some(dir) = trace_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }

    let cfg = GoCastConfig::default();
    eprintln!(
        "traced GoCast run: {} nodes, {} messages, {:.0}% failures ...",
        opts.nodes,
        opts.messages,
        fail_frac * 100.0
    );
    let stats = run_delay(&opts, Proto::GoCast(cfg.clone()), fail_frac);
    log_kernel(&stats.kernel);

    let file = std::fs::File::open(&trace_path)
        .unwrap_or_else(|e| panic!("cannot reopen trace {}: {e}", trace_path.display()));
    let mut analysis = TraceAnalysis::new();
    let mut oracle = InvariantOracle::for_protocol(&cfg);
    let records = scan_trace(std::io::BufReader::new(file), |r| {
        oracle.check(&r);
        analysis.feed(&r);
    })
    .unwrap_or_else(|e| panic!("trace {} is malformed: {e}", trace_path.display()));
    oracle.finish();
    let report = analysis.report();

    println!(
        "trace {}: {records} records, {} messages",
        trace_path.display(),
        report.messages
    );
    println!(
        "deliveries: {} ({} tree, {} pull) — recovery fraction {:.4}",
        report.deliveries,
        report.tree_deliveries,
        report.pull_deliveries,
        report.recovery_fraction()
    );
    println!(
        "dissemination trees reconstructed: {}/{} (mean hops {:.2}, max hop {})",
        report.trees_reconstructed,
        report.messages,
        report.mean_hops(),
        report.max_hop()
    );

    let mut hops = Table::new(["hop", "deliveries", "mean_hop_latency_ms"]);
    for (hop, &n) in report.hop_histogram.iter().enumerate().skip(1) {
        let lat = report
            .per_hop_latency
            .iter()
            .find(|p| p.hop == hop as u32)
            .map(|p| format!("{:.2}", p.mean_ms))
            .unwrap_or_else(|| "-".into());
        hops.row([hop.to_string(), n.to_string(), lat]);
    }
    println!("{hops}");
    opts.write_csv("trace_hops", &hops);

    if oracle.is_clean() {
        println!(
            "invariant oracle: {} records checked, 0 violations",
            oracle.records_checked()
        );
    } else {
        println!(
            "invariant oracle: {} VIOLATIONS in {} records:",
            oracle.violations().len(),
            oracle.records_checked()
        );
        for v in oracle.violations().iter().take(20) {
            println!("  {v}");
        }
    }
    oracle.violations().to_vec()
}
