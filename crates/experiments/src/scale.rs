//! The `scale` experiment: 10⁵–10⁶-node GoCast runs on the sharded kernel.
//!
//! Everything here is built for *bounded memory per node*:
//!
//! - the latency model is [`OnDemandKing`] — O(sites) coordinates, every
//!   pairwise latency synthesized on demand (no N×N table);
//! - the simulation runs on [`ShardedSim`], the fixed-lane conservative
//!   parallel kernel: `--sim-shards N` spreads lanes across N worker
//!   threads while the fixed lane decomposition keeps every recorder
//!   event, statistic, and artifact **byte-identical at any thread
//!   count** (asserted by the integration tests);
//! - delay statistics use the same per-node aggregates as the fig3
//!   runners (O(nodes), not O(deliveries)).
//!
//! Two runs make up the subcommand: a fig3-style fault-free
//! delivery/latency experiment, and one chaos preset (default
//! `catastrophe`, a deterministic correlated site crash — chosen over
//! Poisson `churn` because a short window can legitimately compile an
//! empty churn plan and the scale artifact must exercise faults)
//! driven through the scenario compiler and audited by the invariant
//! oracle. Both report the kernel's self-measured memory occupancy
//! ([`gocast_sim::KernelStats::slab_slots`] / `queue_mem_bytes`) plus the
//! process peak RSS, feeding the scaling-curve table in EXPERIMENTS.md.

use std::fmt::Write as _;
use std::time::Duration;

use gocast::{bootstrap_random_graph, GoCastConfig, GoCastEvent, GoCastNode};
use gocast_analysis::{Cdf, InvariantOracle, MetricsRecorder, RecoveryTracker, Table};
use gocast_metrics::ProtocolMetrics;
use gocast_net::{OnDemandKing, SyntheticKingConfig};
use gocast_sim::{
    NodeId, Recorder, Scenario, ScenarioEnv, ShardedSim, ShardedSimBuilder, SimTime, Stack,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::chaos::{builtin_names, builtin_scenario, parse_spec, WINDOW};
use crate::options::ExpOptions;
use crate::report::kernel_digest;

/// The composite recorder scale runs install: fig3-style delay
/// aggregates, per-message injection accounting for the delivery audit,
/// the online invariant oracle, and capability-neutral protocol counters.
/// All state is O(nodes + messages), never O(deliveries).
#[derive(Debug)]
pub struct ScaleRecorder {
    /// Steady-state delivery aggregates (per-node delays, redundancy).
    pub metrics: MetricsRecorder,
    /// Injection bookkeeping for the end-of-run store audit.
    pub recovery: RecoveryTracker,
    /// Online safety-invariant checker.
    pub oracle: InvariantOracle,
    /// Capability-neutral protocol counters.
    pub proto: ProtocolMetrics,
}

impl ScaleRecorder {
    /// A recorder whose oracle bounds match a GoCast `cfg`.
    pub fn for_protocol(cfg: &GoCastConfig) -> Self {
        ScaleRecorder {
            metrics: MetricsRecorder::new(),
            recovery: RecoveryTracker::new(WINDOW),
            oracle: InvariantOracle::for_protocol(cfg),
            proto: ProtocolMetrics::default(),
        }
    }
}

impl Recorder<GoCastEvent> for ScaleRecorder {
    fn record(&mut self, now: SimTime, node: NodeId, event: GoCastEvent) {
        event.observe_into(&mut self.proto);
        self.recovery.record(now, node, event.clone());
        self.oracle.record(now, node, event.clone());
        self.metrics.record(now, node, event);
    }
}

/// Everything one scale run produces.
#[derive(Debug)]
pub struct ScaleOutcome {
    /// `delivery` or the chaos scenario label.
    pub phase: String,
    /// Nodes simulated.
    pub nodes: usize,
    /// Lanes the population was decomposed into.
    pub lanes: usize,
    /// Worker threads (`--sim-shards`).
    pub sim_shards: usize,
    /// Planned faults the scenario compiled to (0 for the delivery
    /// phase). Poisson presets can legitimately compile to an empty plan
    /// on a short window, so the count is surfaced rather than assumed.
    pub faults: usize,
    /// Messages injected.
    pub injected: u64,
    /// Deliveries owed (audited against the presence timeline).
    pub expected: u64,
    /// Deliveries found in message stores at the end of the run.
    pub delivered: u64,
    /// Per-node average delivery delay distribution (fig3's metric).
    pub per_node_avg: Cdf,
    /// Nodes that missed at least one expected message.
    pub incomplete: usize,
    /// Records the invariant oracle checked.
    pub oracle_records: u64,
    /// Invariant violations found (should be 0).
    pub violations: usize,
    /// The first few violations, formatted (empty on a clean run).
    pub violation_lines: Vec<String>,
    /// Kernel counters at the end of the run (includes the self-reported
    /// queue memory and slab occupancy).
    pub kernel: gocast_sim::KernelStats,
    /// Final combined metrics snapshot (kernel + protocol).
    pub metrics: gocast_metrics::Snapshot,
    /// Process peak RSS (`VmHWM`), best-effort; process-wide, so it is
    /// reported but never part of [`ScaleOutcome::manifest`].
    pub peak_rss_bytes: Option<u64>,
}

impl ScaleOutcome {
    /// `delivered / expected` (1.0 when nothing was owed).
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }

    /// Kernel events retired per wall-clock second inside the run loops.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.kernel.wall_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.kernel.events_processed as f64 / secs
        }
    }

    /// A deterministic one-line digest of the run: every simulation-domain
    /// number and *no* wall-clock or process-wide quantity — the same
    /// options must produce the byte-identical string at **any**
    /// `--sim-shards` count (the integration tests assert this).
    pub fn manifest(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "phase={} nodes={} lanes={} faults={} injected={} expected={} delivered={} ratio={:.6} \
             incomplete={} oracle={}/{}",
            self.phase,
            self.nodes,
            self.lanes,
            self.faults,
            self.injected,
            self.expected,
            self.delivered,
            self.delivery_ratio(),
            self.incomplete,
            self.violations,
            self.oracle_records,
        );
        if !self.per_node_avg.is_empty() {
            let _ = write!(
                s,
                " delay[mean={}us p50={}us p99={}us max={}us]",
                self.per_node_avg.mean().as_micros(),
                self.per_node_avg.percentile(0.50).as_micros(),
                self.per_node_avg.percentile(0.99).as_micros(),
                self.per_node_avg.max().as_micros(),
            );
        }
        let _ = write!(s, " {}", kernel_digest(&self.kernel));
        s
    }

    /// The fig3-style delay-CDF table (`delay_ms`, `fraction`), sampled
    /// at 100 evenly spaced points. Deterministic at any `--sim-shards`.
    pub fn cdf_table(&self) -> Table {
        let mut t = Table::new(["delay_ms", "fraction"]);
        for (d, frac) in self.per_node_avg.curve(100) {
            t.row([
                format!("{:.3}", d.as_secs_f64() * 1000.0),
                format!("{frac:.4}"),
            ]);
        }
        t
    }
}

/// Reads the process peak resident set (`VmHWM`) from
/// `/proc/self/status`, in bytes. Best-effort: `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Builds the sharded simulation every scale run uses: [`OnDemandKing`]
/// latencies (O(sites) memory), the standard bootstrap graph stream
/// (`seed ^ 0xB007`), GoCast with garbage collection pushed past the run
/// so the end-of-run audit can read the stores, and `opts.sim_shards`
/// worker threads. Returns the sim plus the node→site assignment (the
/// group map for correlated site faults).
fn build_scale_sim(
    opts: &ExpOptions,
) -> (
    ShardedSim<GoCastNode, ScaleRecorder>,
    Vec<u32>,
    GoCastConfig,
) {
    let sites = opts.sites.min(opts.nodes.max(16));
    let net = OnDemandKing::new(
        opts.nodes,
        &SyntheticKingConfig {
            sites,
            seed: opts.seed ^ 0x4B494E47,
            ..SyntheticKingConfig::default()
        },
    );
    let groups = net.site_assignment();
    let cfg = GoCastConfig {
        gc_wait: Duration::from_secs(3600),
        ..GoCastConfig::default()
    };
    let links_per_node = (cfg.c_degree() / 2).max(1);
    let mut boot = bootstrap_random_graph(opts.nodes, links_per_node, opts.seed ^ 0xB007);
    let sim = ShardedSimBuilder::new(net)
        .seed(opts.seed)
        .threads(opts.sim_shards)
        .build_with(ScaleRecorder::for_protocol(&cfg), |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, cfg.clone(), links, members)
        });
    (sim, groups, cfg)
}

/// Audits message stores against a presence predicate: a node owes a
/// delivery of message `m` iff `owes(node, injection_time)` and it is not
/// the origin; a delivery counts when the store actually holds `m`.
fn audit_stores(
    sim: &ShardedSim<GoCastNode, ScaleRecorder>,
    owes: impl Fn(NodeId, SimTime) -> bool,
) -> (u64, u64) {
    let injections: Vec<_> = sim.recorder().recovery.injections().collect();
    let mut expected = 0u64;
    let mut delivered = 0u64;
    for n in 0..sim.len() as u32 {
        let n = NodeId::new(n);
        let node = sim.node(n);
        for (id, at) in &injections {
            if n == id.origin || !owes(n, *at) {
                continue;
            }
            expected += 1;
            if node.holds(id.origin, id.seq) {
                delivered += 1;
            }
        }
    }
    (expected, delivered)
}

/// Collects the common tail of both runs into a [`ScaleOutcome`].
fn finish_run(
    mut sim: ShardedSim<GoCastNode, ScaleRecorder>,
    opts: &ExpOptions,
    phase: String,
    faults: usize,
    expected: u64,
    delivered: u64,
) -> ScaleOutcome {
    sim.recorder_mut().oracle.finish();
    let live: Vec<NodeId> = sim.alive_nodes().collect();
    let (per_node_avg, incomplete) = sim
        .recorder()
        .metrics
        .per_node_average_delays(opts.messages as u64, &live);
    let mut snap = sim.metrics_snapshot();
    sim.recorder().proto.snapshot_into(&mut snap);
    let rec = sim.recorder();
    ScaleOutcome {
        phase,
        nodes: opts.nodes,
        lanes: sim.lane_count(),
        sim_shards: opts.sim_shards,
        faults,
        injected: rec.recovery.injected_count(),
        expected,
        delivered,
        per_node_avg,
        incomplete,
        oracle_records: rec.oracle.records_checked(),
        violations: rec.oracle.violations().len(),
        violation_lines: rec
            .oracle
            .violations()
            .iter()
            .take(8)
            .map(|v| v.to_string())
            .collect(),
        kernel: sim.kernel_stats(),
        metrics: snap,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// The fig3-style fault-free run: warm the overlay up, inject
/// `opts.messages` multicasts from uniformly drawn live sources (the
/// standard `seed ^ 0x5EED` stream), drain, and audit every store.
pub fn run_scale_delivery(opts: &ExpOptions) -> ScaleOutcome {
    let (mut sim, _groups, _cfg) = build_scale_sim(opts);
    sim.run_until(SimTime::ZERO + opts.warmup);

    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5EED);
    let live: Vec<NodeId> = sim.alive_nodes().collect();
    let start = sim.now() + Duration::from_millis(100);
    for i in 0..opts.messages {
        let at = start + Duration::from_secs_f64(i as f64 / opts.rate);
        let src = live[rng.gen_range(0..live.len())];
        sim.schedule_command(at, src, <GoCastNode as Stack>::cmd_multicast());
    }
    sim.run_until(start + opts.inject_duration() + opts.drain);

    let (expected, delivered) = audit_stores(&sim, |_, _| true);
    finish_run(sim, opts, "delivery".into(), 0, expected, delivered)
}

/// The chaos run: same build, plus a compiled fault scenario (site groups
/// come from [`OnDemandKing::site_assignment`], so group faults are
/// correlated site failures) scheduled through the kernel-generic
/// [`gocast_sim::FaultSink`], presence-gated injections, and a
/// presence-aware audit — the sharded-kernel analogue of the `chaos`
/// subcommand's driver.
pub fn run_scale_chaos(opts: &ExpOptions, label: &str, scenario: &Scenario) -> ScaleOutcome {
    let (mut sim, groups, _cfg) = build_scale_sim(opts);
    sim.run_until(SimTime::ZERO + opts.warmup);

    let env = ScenarioEnv::new(opts.nodes, opts.seed)
        .with_groups(&groups)
        .starting_at(sim.now());
    let plan = scenario.compile(&env);
    plan.schedule_into_sink(
        &mut sim,
        <GoCastNode as Stack>::cmd_join,
        <GoCastNode as Stack>::cmd_leave,
    );
    let presence = plan.presence();

    // Injections come from nodes the plan says are present at send time
    // (rejection sampling; the plan never empties the population).
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5EED);
    let start = sim.now() + Duration::from_millis(100);
    for i in 0..opts.messages {
        let at = start + Duration::from_secs_f64(i as f64 / opts.rate);
        let src = loop {
            let cand = NodeId::new(rng.gen_range(0..opts.nodes as u32));
            if presence.present(cand, at) {
                break cand;
            }
        };
        sim.schedule_command(at, src, <GoCastNode as Stack>::cmd_multicast());
    }
    let end = plan
        .end()
        .unwrap_or(start)
        .max(start + opts.inject_duration())
        + opts.drain;
    sim.run_until(end);

    let (expected, delivered) = audit_stores(&sim, |n, at| presence.present_from(n, at));
    finish_run(
        sim,
        opts,
        format!("chaos:{label}"),
        plan.len(),
        expected,
        delivered,
    )
}

/// One row of the scaling table this subcommand prints and writes.
fn outcome_row(table: &mut Table, o: &ScaleOutcome) {
    table.row([
        o.phase.clone(),
        o.nodes.to_string(),
        o.lanes.to_string(),
        o.sim_shards.to_string(),
        o.faults.to_string(),
        o.injected.to_string(),
        o.expected.to_string(),
        o.delivered.to_string(),
        format!("{:.4}", o.delivery_ratio()),
        if o.per_node_avg.is_empty() {
            "-".into()
        } else {
            format!("{:.1}", o.per_node_avg.mean().as_secs_f64() * 1000.0)
        },
        o.violations.to_string(),
        o.kernel.events_processed.to_string(),
        format!("{:.0}", o.events_per_sec()),
        format!("{:.1}", o.kernel.queue_mem_bytes as f64 / (1024.0 * 1024.0)),
        o.kernel.slab_slots.to_string(),
        o.peak_rss_bytes
            .map(|b| format!("{:.0}", b as f64 / (1024.0 * 1024.0)))
            .unwrap_or_else(|| "-".into()),
    ]);
}

/// The `scale` subcommand: the fig3-style delivery run plus one chaos
/// preset (default `catastrophe`; `--scenario`/`--spec` select another) at
/// `opts.nodes` on the sharded kernel, printing the scaling row for each
/// and writing `scale.csv` / `scale_cdf.csv`. Returns a process exit
/// code: nonzero when the oracle found violations or delivery collapsed.
pub fn scale(opts: &ExpOptions, scenario_name: &str, spec: Option<&str>) -> i32 {
    let scenario = match spec {
        Some(spec) => parse_spec(spec).unwrap_or_else(|e| {
            eprintln!("bad --spec: {e}");
            std::process::exit(2);
        }),
        None => builtin_scenario(scenario_name, opts).unwrap_or_else(|| {
            eprintln!(
                "unknown scenario `{scenario_name}` (one of: {})",
                builtin_names().join(", ")
            );
            std::process::exit(2);
        }),
    };
    let label = if spec.is_some() {
        "spec"
    } else {
        scenario_name
    };
    eprintln!(
        "scale: {} nodes, {} sim-shard(s), {} messages; delivery + chaos `{label}` ...",
        opts.nodes, opts.sim_shards, opts.messages
    );

    let mut table = Table::new([
        "phase",
        "nodes",
        "lanes",
        "sim_shards",
        "faults",
        "injected",
        "expected",
        "delivered",
        "ratio",
        "mean_ms",
        "violations",
        "events",
        "events_per_sec",
        "queue_mem_mb",
        "slab_slots",
        "peak_rss_mb",
    ]);

    let delivery = run_scale_delivery(opts);
    outcome_row(&mut table, &delivery);
    eprintln!("  {}", delivery.manifest());

    let chaos = run_scale_chaos(opts, label, &scenario);
    outcome_row(&mut table, &chaos);
    eprintln!("  {}", chaos.manifest());

    println!("{table}");
    opts.write_csv_for_scenario("scale", &table, Some(label));
    opts.write_csv("scale_cdf", &delivery.cdf_table());

    let mut code = 0;
    for o in [&delivery, &chaos] {
        for line in &o.violation_lines {
            eprintln!("  violation [{}]: {line}", o.phase);
        }
        if o.violations > 0 {
            code = 1;
        }
        if o.delivery_ratio() < 0.95 {
            eprintln!(
                "  {}: delivery ratio {:.4} below the 0.95 floor",
                o.phase,
                o.delivery_ratio()
            );
            code = 1;
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(sim_shards: usize) -> ExpOptions {
        let mut o = ExpOptions::quick().with_sim_shards(sim_shards);
        o.nodes = 96;
        o.sites = 96;
        o.warmup = Duration::from_secs(20);
        o.messages = 4;
        o.rate = 2.0;
        o.drain = Duration::from_secs(20);
        o
    }

    #[test]
    fn delivery_run_delivers_and_stays_clean() {
        let o = tiny(1);
        let out = run_scale_delivery(&o);
        assert_eq!(out.injected, 4);
        assert_eq!(out.violations, 0, "{:?}", out.violation_lines);
        assert!(
            out.delivery_ratio() > 0.95,
            "ratio {} too low",
            out.delivery_ratio()
        );
        assert!(!out.per_node_avg.is_empty());
        assert!(out.kernel.queue_mem_bytes > 0, "self-reported memory");
        assert!(out.manifest().contains("phase=delivery"));
    }

    // Deterministic timed faults (mass leave + flash crowd), so the plan
    // is guaranteed non-empty at any seed — a Poisson preset over a short
    // window can legitimately compile to nothing (seed 42 does).
    const FAULT_SPEC: &str = "massleave(at=1,count=8); flashcrowd(at=6,count=8)";

    #[test]
    fn chaos_run_survives_faults() {
        let o = tiny(1);
        let scenario = parse_spec(FAULT_SPEC).unwrap();
        let out = run_scale_chaos(&o, "spec", &scenario);
        assert!(out.faults >= 16, "plan must actually contain the faults");
        assert_eq!(out.violations, 0, "{:?}", out.violation_lines);
        assert!(
            out.delivery_ratio() > 0.9,
            "ratio {} too low",
            out.delivery_ratio()
        );
    }

    #[test]
    fn manifests_are_identical_across_sim_shard_counts() {
        let serial = run_scale_delivery(&tiny(1));
        let threaded = run_scale_delivery(&tiny(4));
        assert_eq!(serial.manifest(), threaded.manifest());
        assert_eq!(
            serial.cdf_table().to_string(),
            threaded.cdf_table().to_string(),
            "fig3-style CSV must not depend on --sim-shards"
        );
    }

    #[test]
    fn chaos_manifests_are_identical_across_sim_shard_counts() {
        let scenario = parse_spec(FAULT_SPEC).unwrap();
        let serial = run_scale_chaos(&tiny(1), "spec", &scenario);
        let threaded = run_scale_chaos(&tiny(4), "spec", &scenario);
        assert!(serial.faults >= 16, "identity must be shown under faults");
        assert_eq!(
            serial.manifest(),
            threaded.manifest(),
            "chaos delivery manifest must not depend on --sim-shards"
        );
    }
}
