//! CLI harness: `gocast-experiments <experiment> [flags]`.
//!
//! Experiments (see DESIGN.md for the index):
//!
//! ```text
//! fig1    gossip reliability vs fanout (analytic + empirical)
//! fig3a   delay CDF, five protocols, no failures
//! fig3b   delay CDF, five protocols, 20% concurrent failures
//! fig4    GoCast delay at 1,024 vs 8,192 nodes, 0%/20% failures
//! fig5a   node-degree distribution over time
//! fig5b   overlay/tree link latency over time
//! fig6    largest component vs failure ratio per C_rand
//! ext1    link changes per second (stabilization)
//! ext2    overlay link latency vs number of random links
//! ext3    overlay diameter vs system size
//! ext4    bottleneck physical-link stress vs gossip
//! ext5    gossip delay vs fanout
//! txt1    redundant receptions vs pull delay f
//! txt2    degree split after adaptation
//! txt4    two-continent partition test (C_rand = 0 vs 1)
//! ablate  maintenance design-choice ablations
//! adaptive  future-work adaptive gossip/maintenance periods
//! sweep   multi-seed robustness check of the headline speedup
//! trace       traced GoCast run + tree reconstruction + invariant oracle
//! trace-fail  same with 20% concurrent failures (measures recovery)
//! chaos   scenario-driven faults (churn, site crashes, partitions, loss)
//!         with recovery metrics and the online invariant oracle
//! compare GoCast vs Plumtree head-to-head: both stacks through the same
//!         chaos presets, seeds, oracle, and audit; side-by-side CSV
//! testnet sim-vs-wire conformance: the same workload through the
//!         simulator and through real loopback-UDP nodes (wall-clock
//!         defaults: 16 nodes, 200 messages; accepts --scenario/--spec)
//! scale   10⁵-node-default runs on the sharded kernel (`--sim-shards N`
//!         worker threads, O(1)-memory latency model): a fig3-style
//!         delivery run plus one chaos preset, printing the scaling row
//!         (events/s, self-reported queue memory, peak RSS); accepts
//!         --scenario/--spec (default `catastrophe`), defaults --nodes
//!         to 100,000
//! metrics instrumented quick run rendering every subsystem's telemetry
//!         tables; `metrics --overhead` measures the instrumentation
//!         cost and fails if it exceeds the 5% budget
//! all     everything above at full scale
//! ```
//!
//! Flags: `--quick` (reduced scale), `--nodes N`, `--seed S`,
//! `--warmup SECS`, `--messages M`, `--rate R`, `--drain SECS`,
//! `--out DIR`, `--no-csv`, `--trace-out PATH` (stream the causal JSONL
//! trace of every run to PATH; any experiment accepts it),
//! `--metrics-out PATH` (stream periodic manifest-stamped telemetry
//! snapshots of every run to PATH as JSONL; any experiment accepts it),
//! `--jobs N` (fan independent runs across N worker threads; output is
//! byte-identical to the default fully serial `--jobs 1`).
//!
//! `chaos`/`testnet`/`compare` flags: `--scenario NAME` (one of baseline,
//! churn, catastrophe, partition, flashcrowd, lossy; default churn for
//! `chaos`, baseline for `testnet`; for `compare` it narrows the default
//! preset trio churn+partition+flashcrowd to one), `--spec STR` (an
//! ad-hoc scenario spec like `churn(end=60,leave=0.5,join=0.5);loss(p=0.01)`,
//! overriding `--scenario`; not accepted by `compare`), `--seeds K`
//! (`chaos`/`compare`: run K consecutive seeds, composable with
//! `--jobs`), `--stack NAME` (gocast or plumtree; selects the protocol
//! stack `chaos` drives — default gocast, the historic behavior —
//! ignored by `compare`, which always runs both), `--shards N`
//! (`testnet` only: partition the wire-side fabric across N event-loop
//! threads; default 1 reproduces the single-threaded fabric),
//! `--sim-shards N` (`scale` only: worker threads *inside* the one
//! sharded simulation; every artifact is byte-identical at any value).

use std::time::Duration;

use gocast_experiments::{figures, ExpOptions, StackKind};

fn usage() -> ! {
    eprintln!(
        "usage: gocast-experiments <fig1|fig3a|fig3b|fig4|fig5a|fig5b|fig6|ext1|ext2|ext3|ext4|ext5|txt1|txt2|txt4|ablate|adaptive|sweep|trace|trace-fail|chaos|compare|testnet|scale|metrics|all> \
         [--quick] [--nodes N] [--seed S] [--warmup SECS] [--messages M] [--rate R] [--drain SECS] [--out DIR] [--no-csv] [--trace-out PATH] [--metrics-out PATH] [--jobs N] \
         [--scenario NAME] [--spec STR] [--seeds K] [--stack gocast|plumtree] [--shards N] [--sim-shards N] [--overhead]"
    );
    std::process::exit(2);
}

/// Everything the command line resolves to: the shared experiment options
/// plus the `chaos`-only scenario selection.
struct CliArgs {
    opts: ExpOptions,
    scenario: String,
    spec: Option<String>,
    seeds: u64,
    overhead: bool,
}

fn parse_opts(args: &[String], scale: bool) -> CliArgs {
    // `scale` starts from its own full-scale preset (10⁵ nodes, a
    // minutes-not-hours workload); every explicit flag still overrides.
    let mut opts = if scale {
        ExpOptions::scale()
    } else {
        ExpOptions::default()
    };
    // `scale` defaults to the deterministic site-catastrophe preset:
    // Poisson churn can legitimately compile to an empty plan on a short
    // window (seed 42 does exactly that), and the scale exit artifact
    // must actually exercise faults.
    let mut scenario = String::from(if scale { "catastrophe" } else { "churn" });
    let mut spec = None;
    let mut seeds = 1u64;
    let mut overhead = false;
    let mut explicit_nodes = None;
    let mut explicit_jobs = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut take = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match arg {
            "--quick" => {
                let keep_out = opts.out_dir.clone();
                let keep_stack = opts.stack;
                let keep_sim_shards = opts.sim_shards;
                opts = ExpOptions::quick();
                opts.out_dir = keep_out;
                opts.stack = keep_stack;
                opts.sim_shards = keep_sim_shards;
            }
            "--nodes" => explicit_nodes = Some(take("--nodes").parse().expect("--nodes")),
            "--seed" => opts.seed = take("--seed").parse().expect("--seed"),
            "--warmup" => {
                opts.warmup = Duration::from_secs(take("--warmup").parse().expect("--warmup"))
            }
            "--messages" => opts.messages = take("--messages").parse().expect("--messages"),
            "--rate" => opts.rate = take("--rate").parse().expect("--rate"),
            "--drain" => {
                opts.drain = Duration::from_secs(take("--drain").parse().expect("--drain"))
            }
            "--out" => opts.out_dir = Some(take("--out").into()),
            "--no-csv" => opts.out_dir = None,
            "--trace-out" => opts.trace_out = Some(take("--trace-out").into()),
            "--metrics-out" => opts.metrics_out = Some(take("--metrics-out").into()),
            "--overhead" => overhead = true,
            "--jobs" => explicit_jobs = Some(take("--jobs").parse().expect("--jobs")),
            "--shards" => opts.shards = take("--shards").parse().expect("--shards"),
            "--sim-shards" => opts.sim_shards = take("--sim-shards").parse().expect("--sim-shards"),
            "--scenario" => scenario = take("--scenario"),
            "--spec" => spec = Some(take("--spec")),
            "--seeds" => seeds = take("--seeds").parse().expect("--seeds"),
            "--stack" => {
                let name = take("--stack");
                opts.stack = StackKind::parse(&name).unwrap_or_else(|| {
                    let all: Vec<&str> = StackKind::ALL.iter().map(|k| k.name()).collect();
                    eprintln!("unknown stack `{name}` (one of: {})", all.join(", "));
                    usage()
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
        i += 1;
    }
    if let Some(n) = explicit_nodes {
        opts.nodes = n;
    }
    if let Some(j) = explicit_jobs {
        opts = opts.with_jobs(j);
    }
    if seeds == 0 {
        eprintln!("--seeds must be at least 1");
        usage()
    }
    if opts.shards == 0 {
        eprintln!("--shards must be at least 1");
        usage()
    }
    if opts.sim_shards == 0 {
        eprintln!("--sim-shards must be at least 1");
        usage()
    }
    CliArgs {
        opts,
        scenario,
        spec,
        seeds,
        overhead,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(exp) = args.first() else { usage() };
    let cli = parse_opts(&args[1..], exp == "scale");
    let opts = cli.opts.clone();
    let quick = args.iter().any(|a| a == "--quick");

    let fig4_sizes: Vec<usize> = if quick {
        vec![opts.nodes, opts.nodes * 2]
    } else {
        vec![1024, 8192]
    };
    let ext3_sizes: Vec<usize> = if quick {
        vec![64, 128, 256]
    } else {
        vec![256, 512, 1024, 2048, 4096, 8192]
    };
    let fig5b_secs = if quick { opts.warmup.as_secs() } else { 200 };

    let t0 = std::time::Instant::now();
    match exp.as_str() {
        "fig1" => {
            figures::fig1(&opts);
        }
        "fig3a" => {
            figures::fig3(&opts, 0.0);
        }
        "fig3b" => {
            figures::fig3(&opts, 0.2);
        }
        "fig4" => {
            figures::fig4(&opts, &fig4_sizes);
        }
        "fig5a" => {
            figures::fig5a(&opts);
        }
        "fig5b" => {
            figures::fig5b(&opts, fig5b_secs);
        }
        "fig6" => {
            figures::fig6(&opts);
        }
        "ext1" => {
            figures::ext1(&opts);
        }
        "ext2" => {
            figures::ext2(&opts);
        }
        "ext3" => {
            figures::ext3(&opts, &ext3_sizes);
        }
        "ext4" => {
            figures::ext4(&opts);
        }
        "ext5" => {
            figures::ext5(&opts);
        }
        "txt1" => {
            figures::txt1(&opts);
        }
        "txt2" => {
            figures::txt2(&opts);
        }
        "txt4" => {
            figures::txt4(&opts);
        }
        "ablate" => {
            figures::ablations(&opts);
        }
        "adaptive" => {
            figures::adaptive(&opts);
        }
        "sweep" => {
            // Multi-seed robustness check of the headline result.
            let seeds = 5;
            eprintln!("sweeping GoCast vs gossip mean delay over {seeds} seeds ...");
            let go = gocast_experiments::sweep::sweep_seeds(&opts, seeds, |o| {
                let s = gocast_experiments::runners::run_delay(
                    o,
                    gocast_experiments::Proto::GoCast(Default::default()),
                    0.0,
                );
                gocast_experiments::report::log_kernel_tagged(
                    &format!("GoCast seed {}", o.seed),
                    &s.kernel,
                );
                s.per_node_avg.mean().as_secs_f64()
            });
            let gs = gocast_experiments::sweep::sweep_seeds(&opts, seeds, |o| {
                let s = gocast_experiments::runners::run_delay(
                    o,
                    gocast_experiments::Proto::PushGossip(Default::default()),
                    0.0,
                );
                gocast_experiments::report::log_kernel_tagged(
                    &format!("gossip seed {}", o.seed),
                    &s.kernel,
                );
                s.per_node_avg.mean().as_secs_f64()
            });
            println!("GoCast mean delay (s): {go}");
            println!("gossip mean delay (s): {gs}");
            println!("speedup of means: {:.1}x", gs.mean / go.mean);
        }
        "trace" | "trace-fail" => {
            let fail_frac = if exp == "trace-fail" { 0.2 } else { 0.0 };
            let violations = figures::trace_run(&opts, fail_frac);
            if !violations.is_empty() {
                eprintln!("done in {:?}", t0.elapsed());
                std::process::exit(1);
            }
        }
        "chaos" => {
            let outcomes = gocast_experiments::chaos::chaos(
                &opts,
                &cli.scenario,
                cli.spec.as_deref(),
                cli.seeds,
            );
            if outcomes.iter().any(|o| o.violations > 0) {
                eprintln!("done in {:?}", t0.elapsed());
                std::process::exit(1);
            }
        }
        "compare" => {
            if cli.spec.is_some() {
                eprintln!("compare runs the built-in presets; --spec is not accepted");
                usage()
            }
            // `--scenario` narrows the default preset trio to one.
            let explicit = args.iter().any(|a| a == "--scenario");
            let presets: Vec<&str> = if explicit {
                vec![cli.scenario.as_str()]
            } else {
                gocast_experiments::compare::COMPARE_PRESETS.to_vec()
            };
            let rows = gocast_experiments::compare::compare(&opts, &presets, cli.seeds);
            let violations: usize = rows
                .iter()
                .map(|r| r.gocast.violations + r.plumtree.violations)
                .sum();
            if violations > 0 {
                eprintln!("done in {:?}", t0.elapsed());
                std::process::exit(1);
            }
        }
        "scale" => {
            let code = gocast_experiments::scale::scale(&opts, &cli.scenario, cli.spec.as_deref());
            if code != 0 {
                eprintln!("done in {:?}", t0.elapsed());
                std::process::exit(code);
            }
        }
        "metrics" => {
            let code = if cli.overhead {
                gocast_experiments::metrics_view::overhead(&opts)
            } else {
                gocast_experiments::metrics_view::metrics(&opts)
            };
            if code != 0 {
                eprintln!("done in {:?}", t0.elapsed());
                std::process::exit(code);
            }
        }
        "testnet" => {
            // `chaos` defaults --scenario to churn; the conformance
            // reference point is the fault-free baseline.
            let explicit = args.iter().any(|a| a == "--scenario");
            let scenario = if explicit {
                cli.scenario.as_str()
            } else {
                "baseline"
            };
            let code = gocast_experiments::testnet::testnet(&opts, scenario, cli.spec.as_deref());
            if code != 0 {
                eprintln!("done in {:?}", t0.elapsed());
                std::process::exit(code);
            }
        }
        "all" => {
            figures::fig1(&opts);
            figures::fig3(&opts, 0.0);
            figures::fig3(&opts, 0.2);
            figures::fig4(&opts, &fig4_sizes);
            figures::fig5a(&opts);
            figures::fig5b(&opts, fig5b_secs);
            figures::fig6(&opts);
            figures::ext1(&opts);
            figures::ext2(&opts);
            figures::ext3(&opts, &ext3_sizes);
            figures::ext4(&opts);
            figures::ext5(&opts);
            figures::txt1(&opts);
            figures::txt2(&opts);
            figures::txt4(&opts);
            figures::ablations(&opts);
            figures::adaptive(&opts);
        }
        _ => usage(),
    }
    eprintln!("done in {:?}", t0.elapsed());
}
