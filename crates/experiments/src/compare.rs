//! Head-to-head stack comparison: GoCast vs Plumtree under identical
//! chaos conditions.
//!
//! The `compare` subcommand runs every selected chaos preset through
//! **both** protocol stacks with the *same* network, bootstrap graph
//! shape, scenario plan, seeds, injection schedule, invariant oracle
//! (capability-gated per stack), and end-of-run audit — so any difference
//! in the numbers is attributable to the protocols, not the harness. For
//! each `(preset, seed)` cell it reports, side by side: delivery ratio,
//! mean causal hop count, recovery fraction (deliveries that needed the
//! pull/graft path), mean tree-repair time, orphan-spell statistics, and
//! oracle violations.
//!
//! Output is deterministic: runs fan across `--jobs` workers but merge in
//! submission order, so the table and `compare.csv` are byte-identical at
//! any job count (asserted by the integration tests).

use gocast_analysis::Table;
use gocast_sim::Scenario;

use crate::chaos::{builtin_scenario, run_chaos, ChaosOutcome};
use crate::options::{ExpOptions, StackKind};
use crate::sweep::parallel_map;

/// The presets `compare` runs by default: the three fault families the
/// paper's dependability story rests on (continuous churn, a network
/// split that heals, and a correlated mass leave/rejoin).
pub const COMPARE_PRESETS: &[&str] = &["churn", "partition", "flashcrowd"];

/// One `(preset, seed)` cell of the comparison: the same chaos run
/// through both stacks.
#[derive(Debug)]
pub struct CompareRow {
    /// The preset name this cell ran.
    pub preset: String,
    /// The GoCast outcome.
    pub gocast: ChaosOutcome,
    /// The Plumtree outcome (same scenario plan and seed).
    pub plumtree: ChaosOutcome,
}

impl CompareRow {
    /// The seed both outcomes in this cell used.
    pub fn seed(&self) -> u64 {
        debug_assert_eq!(self.gocast.seed, self.plumtree.seed);
        self.gocast.seed
    }
}

/// Runs `presets × seeds × {gocast, plumtree}` chaos experiments, fanned
/// across `opts.effective_jobs()` workers, and pairs the outcomes up per
/// `(preset, seed)`. `opts.stack` is ignored — both stacks always run.
///
/// Returns `Err` if any preset name is unknown (see
/// [`crate::chaos::builtin_names`]).
///
/// # Panics
///
/// Panics if `seeds == 0` or `presets` is empty.
pub fn compare_sweep(
    opts: &ExpOptions,
    presets: &[&str],
    seeds: u64,
) -> Result<Vec<CompareRow>, String> {
    assert!(seeds > 0, "need at least one seed");
    assert!(!presets.is_empty(), "need at least one preset");
    let scenarios: Vec<(String, Scenario)> = presets
        .iter()
        .map(|&p| {
            builtin_scenario(p, opts)
                .map(|s| (p.to_string(), s))
                .ok_or_else(|| format!("unknown preset `{p}`"))
        })
        .collect::<Result<_, _>>()?;

    // Submission order is the output order: preset-major, then seed, then
    // stack (GoCast before Plumtree) — fixed regardless of job count.
    let mut runs: Vec<(usize, ExpOptions)> = Vec::new();
    for (si, _) in scenarios.iter().enumerate() {
        for i in 0..seeds {
            for stack in StackKind::ALL {
                let o = opts
                    .clone()
                    .with_seed(opts.seed.wrapping_add(i))
                    .with_stack(stack);
                runs.push((si, o));
            }
        }
    }
    let outcomes = parallel_map(opts.effective_jobs(), runs, |_, (si, o)| {
        (si, run_chaos(&o, &scenarios[si].1))
    });

    let mut rows = Vec::with_capacity(outcomes.len() / 2);
    let mut it = outcomes.into_iter();
    while let (Some((si, gocast)), Some((_, plumtree))) = (it.next(), it.next()) {
        debug_assert_eq!(gocast.stack, "gocast");
        debug_assert_eq!(plumtree.stack, "plumtree");
        rows.push(CompareRow {
            preset: scenarios[si].0.clone(),
            gocast,
            plumtree,
        });
    }
    Ok(rows)
}

/// Formats comparison rows as the side-by-side table `compare` prints and
/// writes as `compare.csv`. Column names are prefixed `go_` / `pt_`.
pub fn compare_table(rows: &[CompareRow]) -> Table {
    let mut table = Table::new([
        "preset",
        "seed",
        "faults",
        "go_ratio",
        "pt_ratio",
        "go_mean_hops",
        "pt_mean_hops",
        "go_recovery_frac",
        "pt_recovery_frac",
        "go_repair_ms",
        "pt_repair_ms",
        "go_violations",
        "pt_violations",
    ]);
    let repair = |o: &ChaosOutcome| {
        o.mean_repair()
            .map(|d| format!("{:.0}", d.as_secs_f64() * 1000.0))
            .unwrap_or_else(|| "-".into())
    };
    for r in rows {
        table.row([
            r.preset.clone(),
            r.seed().to_string(),
            r.gocast.plan_len.to_string(),
            format!("{:.4}", r.gocast.delivery_ratio()),
            format!("{:.4}", r.plumtree.delivery_ratio()),
            format!("{:.2}", r.gocast.mean_hops()),
            format!("{:.2}", r.plumtree.mean_hops()),
            format!("{:.4}", r.gocast.recovery_fraction()),
            format!("{:.4}", r.plumtree.recovery_fraction()),
            repair(&r.gocast),
            repair(&r.plumtree),
            r.gocast.violations.to_string(),
            r.plumtree.violations.to_string(),
        ]);
    }
    table
}

/// The `compare` subcommand: run GoCast and Plumtree head-to-head over
/// the selected presets (all of [`COMPARE_PRESETS`] unless the caller
/// narrows it with `--scenario`) and `seeds` consecutive seeds, print the
/// side-by-side table, and write `compare.csv`. Returns the rows for
/// programmatic use; the CLI exits nonzero if any run had an oracle
/// violation.
pub fn compare(opts: &ExpOptions, presets: &[&str], seeds: u64) -> Vec<CompareRow> {
    eprintln!(
        "compare gocast vs plumtree: {} nodes, {} messages, {} seed(s), presets [{}] ...",
        opts.nodes,
        opts.messages,
        seeds,
        presets.join(", "),
    );
    let rows = compare_sweep(opts, presets, seeds).unwrap_or_else(|e| {
        eprintln!("bad preset list: {e}");
        std::process::exit(2);
    });
    let table = compare_table(&rows);
    println!("{table}");
    opts.write_csv("compare", &table);

    let violations: usize = rows
        .iter()
        .map(|r| r.gocast.violations + r.plumtree.violations)
        .sum();
    for r in &rows {
        for o in [&r.gocast, &r.plumtree] {
            for line in &o.violation_lines {
                eprintln!(
                    "  violation [{} {} seed {}]: {line}",
                    r.preset, o.stack, o.seed
                );
            }
        }
    }
    let worst = |pick: fn(&CompareRow) -> &ChaosOutcome| {
        rows.iter()
            .map(|r| pick(r).delivery_ratio())
            .fold(f64::INFINITY, f64::min)
    };
    println!(
        "worst-seed delivery ratio: gocast {:.4}, plumtree {:.4}; oracle: {} violation(s)",
        worst(|r| &r.gocast),
        worst(|r| &r.plumtree),
        violations,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        let mut opts = ExpOptions::quick();
        opts.nodes = 24;
        opts.sites = 24;
        opts.warmup = std::time::Duration::from_secs(10);
        opts.messages = 4;
        opts.rate = 2.0;
        opts.drain = std::time::Duration::from_secs(15);
        opts
    }

    #[test]
    fn compare_pairs_stacks_per_preset_and_seed() {
        let rows = compare_sweep(&tiny(), &["baseline"], 2).unwrap();
        assert_eq!(rows.len(), 2);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.preset, "baseline");
            assert_eq!(r.seed(), 42 + i as u64);
            assert_eq!(r.gocast.stack, "gocast");
            assert_eq!(r.plumtree.stack, "plumtree");
            assert_eq!(r.gocast.injected, r.plumtree.injected);
            assert_eq!(r.gocast.violations, 0);
            assert_eq!(r.plumtree.violations, 0);
        }
        let table = compare_table(&rows);
        assert_eq!(table.rows(), 2);
    }

    #[test]
    fn compare_rejects_unknown_preset() {
        let err = compare_sweep(&tiny(), &["churn", "nope"], 1).unwrap_err();
        assert!(err.contains("nope"));
    }
}
