//! Shared simulation runners behind every experiment.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use gocast::{snapshot, GoCastConfig, GoCastEvent, GoCastNode, LinkKind, Snapshot};
use gocast_analysis::{Cdf, DelayHistogram, Histogram, MetricsRecorder};
use gocast_baselines::{PushGossipConfig, PushGossipNode};
use gocast_metrics::ProtocolMetrics;
use gocast_net::{synthetic_king, SiteLatencyMatrix, SyntheticKingConfig};
use gocast_sim::{KernelStats, NodeId, Recorder, Sim, SimBuilder, SimTime, Stack, TraceRecorder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::options::{ExpOptions, StackKind};

/// Distinguishes traces when one process runs several simulations (e.g.
/// `fig3a` runs five protocols): run `k > 0` writes `<stem>.<k>.<ext>`.
static TRACE_RUN: AtomicU32 = AtomicU32::new(0);
/// Same numbering, independently, for `--metrics-out` JSONL streams.
static METRICS_RUN: AtomicU32 = AtomicU32::new(0);

fn numbered_trace_path(path: &Path, k: u32) -> PathBuf {
    if k == 0 {
        return path.to_path_buf();
    }
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let name = match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.{k}.{ext}"),
        None => format!("{stem}.{k}"),
    };
    path.with_file_name(name)
}

/// The recorder every experiment runner installs: the aggregating
/// [`MetricsRecorder`] always, plus an optional JSONL causal-trace sink
/// when `--trace-out` is given. With tracing off (the default) the only
/// added cost per event is one `Option` check; the aggregate side is
/// reachable through `Deref`, so `sim.recorder().delivered()` and friends
/// read exactly as before.
#[derive(Debug, Default)]
pub struct ExpRecorder {
    metrics: MetricsRecorder,
    proto: ProtocolMetrics,
    trace: Option<TraceRecorder<io::BufWriter<File>>>,
}

/// Opens a manifest-stamped JSONL sink: the provenance line goes in
/// first, then the `TraceRecorder` takes over the stream.
fn open_stamped_jsonl(
    path: &Path,
    manifest: &gocast_metrics::RunManifest,
) -> io::Result<TraceRecorder<io::BufWriter<File>>> {
    use io::Write as _;
    let mut file = io::BufWriter::new(File::create(path)?);
    writeln!(file, "{}", manifest.json_line())?;
    Ok(TraceRecorder::new(file))
}

impl ExpRecorder {
    /// A metrics-only recorder (tracing off).
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder honoring `opts.trace_out`. A trace-file open failure
    /// warns and falls back to metrics-only rather than aborting the run.
    pub fn for_opts(opts: &ExpOptions) -> Self {
        let trace = opts.trace_out.as_ref().and_then(|base| {
            let path = numbered_trace_path(base, TRACE_RUN.fetch_add(1, Ordering::Relaxed));
            match open_stamped_jsonl(&path, &opts.manifest(None)) {
                Ok(rec) => {
                    eprintln!("tracing to {}", path.display());
                    // GoCast traces keep the historic untagged schema
                    // (readers default a missing `proto` to gocast); other
                    // stacks are tagged explicitly.
                    Some(match opts.stack {
                        StackKind::GoCast => rec,
                        other => rec.with_proto(other.name()),
                    })
                }
                Err(e) => {
                    eprintln!("warning: cannot open trace {}: {e}", path.display());
                    None
                }
            }
        });
        ExpRecorder {
            metrics: MetricsRecorder::new(),
            proto: ProtocolMetrics::default(),
            trace,
        }
    }

    /// Lines written to the trace so far (`None` when tracing is off).
    pub fn trace_lines(&self) -> Option<u64> {
        self.trace.as_ref().map(|t| t.lines())
    }

    /// The capability-neutral protocol counters folded from every event
    /// this recorder saw (pushes, IHAVEs, pulls, redundant drops, ...).
    pub fn protocol_metrics(&self) -> &ProtocolMetrics {
        &self.proto
    }
}

impl Deref for ExpRecorder {
    type Target = MetricsRecorder;

    fn deref(&self) -> &MetricsRecorder {
        &self.metrics
    }
}

impl Recorder<GoCastEvent> for ExpRecorder {
    fn record(&mut self, now: SimTime, node: NodeId, event: GoCastEvent) {
        event.observe_into(&mut self.proto);
        if let Some(trace) = &mut self.trace {
            trace.record(now, node, event.clone());
        }
        self.metrics.record(now, node, event);
    }
}

/// A `--metrics-out` JSONL stream: one manifest line, then one
/// `"ev":"metrics"` snapshot line per sample, all deterministic fields
/// only — byte-identical at any `--jobs` (streaming forces serial runs,
/// and wall-clock metric entries are excluded by the snapshot encoder).
#[derive(Debug)]
pub struct MetricsStream {
    rec: TraceRecorder<io::BufWriter<File>>,
}

impl MetricsStream {
    /// Opens the stream named by `opts.metrics_out`, if set. Later runs
    /// in one process get numbered files, mirroring trace output. An
    /// open failure warns and disables streaming for the run.
    pub fn for_opts(opts: &ExpOptions, scenario: Option<&str>) -> Option<MetricsStream> {
        let base = opts.metrics_out.as_ref()?;
        let path = numbered_trace_path(base, METRICS_RUN.fetch_add(1, Ordering::Relaxed));
        match open_stamped_jsonl(&path, &opts.manifest(scenario)) {
            Ok(rec) => {
                eprintln!("metrics to {}", path.display());
                Some(MetricsStream { rec })
            }
            Err(e) => {
                eprintln!("warning: cannot open metrics {}: {e}", path.display());
                None
            }
        }
    }

    /// Appends one snapshot line stamped with simulation time `now`.
    pub fn sample(&mut self, now: SimTime, snap: &gocast_metrics::Snapshot) {
        self.rec.record(now, NodeId::new(0), snap.clone());
    }
}

/// One combined snapshot of everything the simulation knows: kernel
/// counters/telemetry plus the recorder's protocol metrics.
pub fn combined_snapshot<P>(sim: &Sim<P, ExpRecorder>) -> gocast_metrics::Snapshot
where
    P: Stack<Event = GoCastEvent>,
{
    let mut snap = sim.metrics_snapshot();
    sim.recorder().protocol_metrics().snapshot_into(&mut snap);
    snap
}

/// Advances the simulation to `until`; with a metrics stream attached,
/// steps in one-second slices and samples a combined snapshot after each.
fn run_sampled<P>(sim: &mut Sim<P, ExpRecorder>, until: SimTime, stream: &mut Option<MetricsStream>)
where
    P: Stack<Event = GoCastEvent>,
{
    match stream {
        None => sim.run_until(until),
        Some(s) => {
            let mut t = sim.now();
            while t < until {
                t = (t + Duration::from_secs(1)).min(until);
                sim.run_until(t);
                s.sample(t, &combined_snapshot(sim));
            }
        }
    }
}

/// Which protocol to drive through a delay experiment.
#[derive(Debug, Clone)]
pub enum Proto {
    /// Full GoCast, or its tree-less overlay presets.
    GoCast(GoCastConfig),
    /// Push-based gossip / no-wait gossip.
    PushGossip(PushGossipConfig),
}

impl Proto {
    /// Display label matching the paper's curve names.
    pub fn label(&self) -> String {
        match self {
            Proto::GoCast(cfg) if cfg.tree_enabled => "GoCast".into(),
            Proto::GoCast(cfg) if cfg.c_near == 0 => "random overlay".into(),
            Proto::GoCast(_) => "proximity overlay".into(),
            Proto::PushGossip(cfg) if cfg.no_wait => format!("no-wait gossip (F={})", cfg.fanout),
            Proto::PushGossip(cfg) => format!("gossip (F={})", cfg.fanout),
        }
    }
}

/// Outcome of one dissemination run.
#[derive(Debug)]
pub struct DelayStats {
    /// Protocol label.
    pub protocol: String,
    /// Live nodes at measurement time.
    pub live_nodes: usize,
    /// Per-node average delay over nodes that got *every* message.
    pub per_node_avg: Cdf,
    /// Nodes that missed at least one message (the paper's gossip curves
    /// saturate below 1.0 because of these).
    pub incomplete_nodes: usize,
    /// Streaming histogram over all (node, message) delays — bounded
    /// memory regardless of how many deliveries the run produced.
    pub all_delays: DelayHistogram,
    /// Mean receptions per delivered message (1.0 = no duplicates).
    pub redundancy: f64,
    /// Fraction of deliveries over tree links.
    pub tree_fraction: f64,
    /// Pull requests issued during the run.
    pub pulls: u64,
    /// Kernel counters snapshotted at the end of the run (events
    /// processed, drops, queue high-water, events/sec).
    pub kernel: KernelStats,
    /// Final combined metrics snapshot (kernel + protocol).
    pub metrics: gocast_metrics::Snapshot,
}

/// The synthetic-King network for a given option set.
pub fn build_network(opts: &ExpOptions) -> SiteLatencyMatrix {
    synthetic_king(
        opts.nodes,
        &SyntheticKingConfig {
            sites: opts.sites.min(opts.nodes.max(16)),
            seed: opts.seed ^ 0x4B494E47, // "KING"
            ..Default::default()
        },
    )
}

fn failure_set(opts: &ExpOptions, fail_frac: f64) -> Vec<NodeId> {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xFA11);
    let k = (opts.nodes as f64 * fail_frac).round() as usize;
    let mut ids: Vec<u32> = (0..opts.nodes as u32).collect();
    for i in 0..k {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.into_iter().map(NodeId::new).collect()
}

/// Schedules `opts.messages` multicasts at `opts.rate` from random live
/// sources, starting at `start`. Works for any [`Stack`], which supplies
/// the protocol's multicast command.
fn schedule_injections<P>(sim: &mut Sim<P, ExpRecorder>, opts: &ExpOptions, start: SimTime)
where
    P: Stack<Event = gocast::GoCastEvent>,
{
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5EED);
    let live: Vec<NodeId> = sim.alive_nodes().collect();
    for i in 0..opts.messages {
        let at = start + Duration::from_secs_f64(i as f64 / opts.rate);
        let src = live[rng.gen_range(0..live.len())];
        sim.schedule_command(at, src, P::cmd_multicast());
    }
}

fn collect_delay_stats<P>(sim: &Sim<P, ExpRecorder>, opts: &ExpOptions, label: String) -> DelayStats
where
    P: Stack<Event = gocast::GoCastEvent>,
{
    let live: Vec<NodeId> = sim.alive_nodes().collect();
    let rec = sim.recorder();
    let (per_node_avg, incomplete) = rec.per_node_average_delays(opts.messages as u64, &live);
    DelayStats {
        protocol: label,
        live_nodes: live.len(),
        per_node_avg,
        incomplete_nodes: incomplete,
        all_delays: rec.delay_histogram().clone(),
        redundancy: rec.redundancy_factor(),
        tree_fraction: rec.tree_fraction(),
        pulls: rec.pulls(),
        kernel: sim.kernel_stats(),
        metrics: combined_snapshot(sim),
    }
}

/// Builds a GoCast simulation in the paper's standard bootstrap state.
pub fn build_gocast_sim(
    opts: &ExpOptions,
    cfg: &GoCastConfig,
    track_pairs: bool,
) -> Sim<GoCastNode, ExpRecorder> {
    let net = build_network(opts);
    let links_per_node = (cfg.c_degree() / 2).max(1);
    let mut boot = gocast::bootstrap_random_graph(opts.nodes, links_per_node, opts.seed ^ 0xB007);
    let mut builder = SimBuilder::new(net).seed(opts.seed);
    if track_pairs {
        builder = builder.track_pair_counts();
    }
    if opts.metrics_out.is_some() {
        builder = builder.telemetry();
    }
    builder.build_with(ExpRecorder::for_opts(opts), |id| {
        let (links, members) = boot(id);
        GoCastNode::with_initial_links(id, cfg.clone(), links, members)
    })
}

/// Runs a full dissemination experiment: warm up (GoCast only), optionally
/// fail a fraction of nodes and freeze all repair, inject the message
/// workload, drain, and aggregate.
pub fn run_delay(opts: &ExpOptions, proto: Proto, fail_frac: f64) -> DelayStats {
    let label = proto.label();
    let mut stream = MetricsStream::for_opts(opts, None);
    match proto {
        Proto::GoCast(cfg) => {
            let mut sim = build_gocast_sim(opts, &cfg, false);
            run_sampled(&mut sim, SimTime::ZERO + opts.warmup, &mut stream);
            apply_failures_and_freeze(&mut sim, opts, fail_frac, true);
            let start = sim.now() + Duration::from_millis(100);
            schedule_injections(&mut sim, opts, start);
            run_sampled(
                &mut sim,
                start + opts.inject_duration() + opts.drain,
                &mut stream,
            );
            collect_delay_stats(&sim, opts, label)
        }
        Proto::PushGossip(cfg) => {
            let net = build_network(opts);
            let mut builder = SimBuilder::new(net).seed(opts.seed);
            if opts.metrics_out.is_some() {
                builder = builder.telemetry();
            }
            let mut sim = builder.build_with(ExpRecorder::for_opts(opts), |id| {
                PushGossipNode::new(id, cfg.clone())
            });
            // No overlay to warm up: full membership is assumed.
            run_sampled(&mut sim, SimTime::from_secs(2), &mut stream);
            apply_failures_and_freeze(&mut sim, opts, fail_frac, false);
            let start = sim.now() + Duration::from_millis(100);
            schedule_injections(&mut sim, opts, start);
            run_sampled(
                &mut sim,
                start + opts.inject_duration() + opts.drain,
                &mut stream,
            );
            collect_delay_stats(&sim, opts, label)
        }
    }
}

fn apply_failures_and_freeze<P>(
    sim: &mut Sim<P, ExpRecorder>,
    opts: &ExpOptions,
    fail_frac: f64,
    freeze: bool,
) where
    P: Stack<Event = gocast::GoCastEvent>,
{
    if fail_frac <= 0.0 {
        return;
    }
    for id in failure_set(opts, fail_frac) {
        sim.fail_node(id);
    }
    // A stack without repair activity has no freeze command; skip.
    if freeze && P::cmd_freeze().is_some() {
        let live: Vec<NodeId> = sim.alive_nodes().collect();
        for id in live {
            let cmd = P::cmd_freeze().expect("checked above");
            sim.command_now(id, cmd);
        }
        sim.run_for(Duration::from_millis(1));
    }
}

/// Result of an adaptation run (Figures 5(a), 5(b); §3 summary (1)).
#[derive(Debug)]
pub struct AdaptationResult {
    /// Total-degree histograms at the requested snapshot times.
    pub degree_hists: Vec<(u64, Histogram)>,
    /// `(second, mean overlay link latency, mean tree link latency)`.
    pub latency_series: Vec<(u64, Duration, Duration)>,
    /// Link adds + drops per second (both endpoints count).
    pub link_changes_per_sec: Vec<u64>,
    /// Final random-degree histogram.
    pub rand_hist: Histogram,
    /// Final nearby-degree histogram.
    pub near_hist: Histogram,
    /// Final snapshot.
    pub final_snapshot: Snapshot,
    /// Final average total degree.
    pub mean_degree: f64,
    /// Kernel counters snapshotted at the end of the run.
    pub kernel: KernelStats,
    /// Final combined metrics snapshot (kernel + protocol).
    pub metrics: gocast_metrics::Snapshot,
}

/// Runs the paper's adaptation experiment: all nodes boot simultaneously
/// with 3 random links each and the maintenance protocols reshape the
/// overlay and tree.
pub fn run_adaptation(
    opts: &ExpOptions,
    cfg: &GoCastConfig,
    snap_times: &[u64],
    latency_secs: u64,
) -> AdaptationResult {
    let mut sim = build_gocast_sim(opts, cfg, false);
    let mut stream = MetricsStream::for_opts(opts, None);
    let end = opts
        .warmup
        .as_secs()
        .max(latency_secs)
        .max(snap_times.iter().copied().max().unwrap_or(0));
    let mut degree_hists = Vec::new();
    let mut latency_series = Vec::new();
    for sec in 0..=end {
        sim.run_until(SimTime::from_secs(sec));
        if let Some(s) = &mut stream {
            s.sample(SimTime::from_secs(sec), &combined_snapshot(&sim));
        }
        if snap_times.contains(&sec) {
            let snap = snapshot(&sim);
            degree_hists.push((sec, Histogram::from_values(snap.degrees())));
        }
        if sec <= latency_secs {
            let snap = snapshot(&sim);
            latency_series.push((
                sec,
                snap.mean_overlay_latency(sim.latency_model()),
                snap.mean_tree_latency(sim.latency_model()),
            ));
        }
    }
    let final_snapshot = snapshot(&sim);
    let mean_degree = final_snapshot.degrees().iter().sum::<usize>() as f64 / opts.nodes as f64;
    let rand_hist =
        Histogram::from_values(sim.iter_nodes().map(|(_, n)| n.degrees().d_rand as usize));
    let near_hist =
        Histogram::from_values(sim.iter_nodes().map(|(_, n)| n.degrees().d_near as usize));
    AdaptationResult {
        degree_hists,
        latency_series,
        link_changes_per_sec: sim.recorder().link_changes_per_sec().to_vec(),
        rand_hist,
        near_hist,
        final_snapshot,
        mean_degree,
        kernel: sim.kernel_stats(),
        metrics: combined_snapshot(&sim),
    }
}

/// Largest-component fraction `q` after failing `frac` of the nodes,
/// averaged over `draws` random failure sets (Figure 6). Runs entirely on
/// the adapted overlay snapshot.
pub fn resilience_q(snap: &Snapshot, frac: f64, draws: usize, seed: u64) -> f64 {
    let n = snap.n;
    let adj = snap.overlay_adjacency();
    let mut total = 0.0;
    for d in 0..draws {
        let mut rng = SmallRng::seed_from_u64(seed ^ (d as u64) << 32 ^ (frac * 1000.0) as u64);
        let k = (n as f64 * frac).round() as usize;
        let mut alive = vec![true; n];
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
            alive[ids[i]] = false;
        }
        total += gocast_analysis::largest_component_fraction(&adj, &alive);
    }
    total / draws as f64
}

/// Mean latency of overlay links by kind plus overall (§3 summary (2)).
pub fn overlay_latency_breakdown(
    snap: &Snapshot,
    net: &dyn gocast_sim::LatencyModel,
) -> (Duration, Duration, Duration) {
    (
        snap.mean_overlay_latency(net),
        snap.mean_overlay_latency_of(LinkKind::Random, net),
        snap.mean_overlay_latency_of(LinkKind::Nearby, net),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            nodes: 48,
            sites: 48,
            seed: 5,
            warmup: Duration::from_secs(20),
            messages: 5,
            rate: 5.0,
            drain: Duration::from_secs(20),
            out_dir: None,
            trace_out: None,
            metrics_out: None,
            jobs: 1,
            stack: StackKind::GoCast,
            shards: 1,
            sim_shards: 1,
        }
    }

    #[test]
    fn labels_match_paper_curves() {
        assert_eq!(Proto::GoCast(GoCastConfig::default()).label(), "GoCast");
        assert_eq!(
            Proto::GoCast(GoCastConfig::proximity_overlay()).label(),
            "proximity overlay"
        );
        assert_eq!(
            Proto::GoCast(GoCastConfig::random_overlay()).label(),
            "random overlay"
        );
        assert_eq!(
            Proto::PushGossip(PushGossipConfig::default()).label(),
            "gossip (F=5)"
        );
        assert_eq!(
            Proto::PushGossip(PushGossipConfig::no_wait()).label(),
            "no-wait gossip (F=5)"
        );
    }

    #[test]
    fn failure_set_is_deterministic_and_sized() {
        let opts = tiny();
        let a = failure_set(&opts, 0.25);
        let b = failure_set(&opts, 0.25);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 12, "distinct");
    }

    #[test]
    fn gocast_delay_run_completes_everyone() {
        let stats = run_delay(&tiny(), Proto::GoCast(GoCastConfig::default()), 0.0);
        assert_eq!(stats.live_nodes, 48);
        assert_eq!(stats.incomplete_nodes, 0, "no failures, no misses");
        assert!(stats.per_node_avg.mean() < Duration::from_secs(1));
        assert!(stats.tree_fraction > 0.8);
        let counter = |name: &str| {
            stats
                .metrics
                .entries()
                .iter()
                .find(|e| e.name == name)
                .map(|e| match e.value {
                    gocast_metrics::MetricValue::Counter(v) => v,
                    _ => panic!("{name} is not a counter"),
                })
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(counter("proto_injected"), 5);
        assert_eq!(counter("proto_deliveries"), 5 * 47);
        assert_eq!(counter("kernel_events"), stats.kernel.events_processed);
    }

    #[test]
    fn gossip_delay_run_is_slower_than_gocast() {
        let opts = tiny();
        let go = run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.0);
        let gs = run_delay(&opts, Proto::PushGossip(PushGossipConfig::default()), 0.0);
        // Even at toy scale the tree should beat random gossip clearly.
        assert!(
            gs.per_node_avg.mean() > go.per_node_avg.mean(),
            "gossip {:?} should be slower than GoCast {:?}",
            gs.per_node_avg.mean(),
            go.per_node_avg.mean()
        );
    }

    #[test]
    fn failed_run_still_reaches_live_nodes() {
        let stats = run_delay(&tiny(), Proto::GoCast(GoCastConfig::default()), 0.2);
        assert_eq!(stats.live_nodes, 48 - 10);
        assert_eq!(stats.incomplete_nodes, 0, "gossip recovery must cover");
        assert!(stats.pulls > 0);
    }

    #[test]
    fn adaptation_improves_latency_and_degrees() {
        let opts = tiny();
        let res = run_adaptation(&opts, &GoCastConfig::default(), &[0, 20], 20);
        assert_eq!(res.degree_hists.len(), 2);
        let first = res.latency_series.first().unwrap();
        let last = res.latency_series.last().unwrap();
        assert!(last.1 < first.1, "overlay latency should fall");
        assert!(res.mean_degree > 5.0 && res.mean_degree < 8.0);
        assert!(
            res.rand_hist.fraction(1) > 0.5,
            "most nodes have 1 random link"
        );
    }

    #[test]
    fn resilience_q_full_at_zero_failures() {
        let opts = tiny();
        let res = run_adaptation(&opts, &GoCastConfig::default(), &[], 0);
        let q0 = resilience_q(&res.final_snapshot, 0.0, 2, 7);
        assert!(
            (q0 - 1.0).abs() < 1e-9,
            "connected overlay, q = 1, got {q0}"
        );
        let q_half = resilience_q(&res.final_snapshot, 0.5, 2, 7);
        assert!(q_half <= 1.0);
    }
}
