#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite.
#
# Usage: scripts/check.sh
# Runs from any directory; everything executes at the workspace root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (perf lints, -D warnings)"
# -W clippy::perf before -D warnings: perf lints are raised to warn, then
# the warnings group denies every warn-level lint, so perf findings fail
# the gate.
cargo clippy --workspace --all-targets -- -W clippy::perf -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> traced smoke experiment + invariant oracle"
# A small traced GoCast run whose JSONL trace is then reconstructed and
# checked by the invariant oracle; the subcommand exits nonzero on any
# violation or unreconstructable dissemination tree.
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release -q -p gocast-experiments -- trace --quick --nodes 64 \
    --messages 20 --no-csv --trace-out "$TRACE_DIR/smoke.jsonl"

echo "All checks passed."
