#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite.
#
# Usage: scripts/check.sh
# Runs from any directory; everything executes at the workspace root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
