#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite.
#
# Usage: scripts/check.sh
# Runs from any directory; everything executes at the workspace root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (perf lints, -D warnings)"
# -W clippy::perf before -D warnings: perf lints are raised to warn, then
# the warnings group denies every warn-level lint, so perf findings fail
# the gate.
cargo clippy --workspace --all-targets -- -W clippy::perf -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (missing docs are errors)"
# First-party crates only: the vendored offline stand-ins under vendor/
# are exempt from the docs gate. gocast-sim and gocast-core carry
# #![warn(missing_docs)], which -D warnings turns into errors.
FIRST_PARTY=(-p gocast-sim -p gocast-net -p gocast-membership -p gocast
    -p gocast-baselines -p gocast-plumtree -p gocast-analysis
    -p gocast-metrics -p gocast-experiments -p gocast-udp -p gocast-testnet
    -p gocast-bench -p gocast-tests -p gocast-examples)
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps "${FIRST_PARTY[@]}"

echo "==> cargo test --doc"
cargo test -q --doc -p gocast-sim -p gocast-net -p gocast-membership \
    -p gocast -p gocast-baselines -p gocast-plumtree -p gocast-analysis \
    -p gocast-metrics -p gocast-experiments -p gocast-udp -p gocast-testnet

echo "==> chaos smoke scenario (oracle-gated)"
# A quick scenario-driven churn run; the subcommand exits nonzero if the
# online invariant oracle reports any violation.
cargo run --release -q -p gocast-experiments -- chaos --quick --nodes 64 \
    --scenario churn --seeds 2 --no-csv

echo "==> compare smoke: gocast vs plumtree under the same chaos preset"
# Both stacks through one preset with identical seeds and audit; the
# subcommand exits nonzero if either stack's invariant oracle reports a
# violation, so a regression in either protocol fails the gate.
cargo run --release -q -p gocast-experiments -- compare --quick --nodes 64 \
    --scenario churn --seeds 2 --no-csv

echo "==> traced smoke experiment + invariant oracle"
# A small traced GoCast run whose JSONL trace is then reconstructed and
# checked by the invariant oracle; the subcommand exits nonzero on any
# violation or unreconstructable dissemination tree.
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release -q -p gocast-experiments -- trace --quick --nodes 64 \
    --messages 20 --no-csv --trace-out "$TRACE_DIR/smoke.jsonl"

echo "==> metrics smoke: instrumented run + JSONL stream determinism"
# The metrics view runs a fully instrumented simulation and renders every
# subsystem's telemetry tables; a second quick run streams snapshots to a
# manifest-stamped JSONL file that must be non-empty and start with the
# run-manifest header.
cargo run --release -q -p gocast-experiments -- metrics --quick --nodes 64
cargo run --release -q -p gocast-experiments -- fig3a --quick --nodes 64 \
    --no-csv --metrics-out "$TRACE_DIR/metrics.jsonl"
head -n1 "$TRACE_DIR/metrics.jsonl" | grep -q '"manifest":1' \
    || { echo "FAIL: metrics JSONL missing run-manifest header" >&2; exit 1; }
grep -q '"ev":"metrics"' "$TRACE_DIR/metrics.jsonl" \
    || { echo "FAIL: metrics JSONL contains no snapshots" >&2; exit 1; }

echo "==> telemetry overhead budget (instrumented kernel within 5%)"
# Exits nonzero if the instrumented kernel retires steady-state events
# more than 5% slower than the uninstrumented one.
cargo run --release -q -p gocast-experiments -- metrics --overhead --nodes 64

echo "==> testnet sim-vs-wire conformance (real loopback sockets)"
# The same workload through the simulator and through real loopback-UDP
# nodes; exits nonzero if the two sides disagree beyond tolerance or any
# trace violates a protocol invariant. The subcommand itself skips with
# exit 0 where loopback sockets cannot be bound (socket-less sandboxes),
# keeping this gate green without network access. A smaller-than-default
# workload keeps the wall-clock cost at a few seconds per run.
cargo run --release -q -p gocast-experiments -- testnet --nodes 12 \
    --messages 100 --no-csv
cargo run --release -q -p gocast-experiments -- testnet --nodes 12 \
    --messages 100 --scenario partition --no-csv

echo "==> batched sharded wire path (syscall batching live under conformance)"
# Runs the conformance workload on two event-loop shards and asserts the
# batch path actually engaged: conformance PASS plus a nonzero
# syscalls_saved count on the greppable `fabric:` line. Skipped where
# loopback is unavailable (the subcommand exits 0 without printing the
# fabric line).
SHARD_OUT=$(cargo run --release -q -p gocast-experiments -- testnet \
    --nodes 12 --messages 100 --shards 2 --no-csv)
if echo "$SHARD_OUT" | grep -q '^fabric:'; then
    echo "$SHARD_OUT" | grep '^fabric:'
    echo "$SHARD_OUT" | grep -q '^conformance: PASS' \
        || { echo "FAIL: sharded conformance did not pass" >&2; exit 1; }
    echo "$SHARD_OUT" | grep '^fabric:' | grep -Eq 'syscalls_saved=[1-9]' \
        || { echo "FAIL: sharded run saved no syscalls (batching inactive)" >&2; exit 1; }
else
    echo "==> skipped (loopback unavailable)"
fi

echo "==> portable (non-mmsg) wire path fallback"
# The same conformance workload with GOCAST_FABRIC_PORTABLE forcing the
# sendto/recv_from fallback: correctness must not depend on sendmmsg.
GOCAST_FABRIC_PORTABLE=1 cargo run --release -q -p gocast-experiments -- \
    testnet --nodes 12 --messages 100 --shards 2 --no-csv

echo "==> scale smoke: 10^4 nodes on the sharded kernel (oracle-gated)"
# A 10,000-node delivery + site-catastrophe run through the sharded
# kernel and the
# O(sites)-memory latency model, on 2 worker threads. The subcommand
# exits nonzero on any oracle violation or delivery collapse; `timeout`
# enforces the wall-clock budget so a scaling regression fails loudly.
timeout 600 cargo run --release -q -p gocast-experiments -- scale \
    --nodes 10000 --sim-shards 2 --warmup 30 --messages 10 --rate 2 \
    --drain 20 --no-csv

echo "==> docs cross-reference check (every .md link resolves)"
# Every relative markdown link in the repo's own docs must point at a
# file that exists, so the architecture pass cannot rot silently.
fail=0
for doc in *.md crates/*/README.md; do
    [[ -f "$doc" ]] || continue
    # Externally sourced reference material (paper abstracts, exemplar
    # snippets, the issue brief) quotes links from *other* repositories;
    # only the repo's own docs are held to the resolvable-link bar.
    case "$doc" in
        SNIPPETS.md|PAPER.md|PAPERS.md|ISSUE.md) continue ;;
    esac
    dir=$(dirname "$doc")
    # Relative links only: skip http(s), mailto, and in-page anchors.
    while IFS= read -r target; do
        [[ -z "$target" ]] && continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [[ -e "$dir/$path" ]] || {
            echo "FAIL: $doc links to missing file: $target" >&2
            fail=1
        }
    done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done
[[ $fail -eq 0 ]] || exit 1
echo "    all markdown links resolve"

echo "All checks passed."
