#!/usr/bin/env bash
# Bench-regression guard for the kernel hot path and the wire fabric.
#
# Usage: scripts/bench_compare.sh [--update]
#
# Reads the committed throughput baselines from BENCH_kernel.json
# (`kernel/events_per_steady_second_128`, the sharded-kernel headline
# `kernel_scale_events_per_sec`, and the headline
# `testnet_msgs_per_sec`, the best point on the 64-node shard-scaling
# curve), re-runs the benchmark suite
# (which rewrites BENCH_kernel.json), and fails if fresh throughput fell
# more than 25% below either baseline. The testnet gate is advisory where
# loopback sockets cannot be bound (the bench reports null there) — the
# kernel gate always applies. With `--update` the regenerated file is
# kept as the new committed baseline; without it, the committed baseline
# is restored afterwards so a plain check leaves the tree clean.

set -euo pipefail
cd "$(dirname "$0")/.."

KERNEL_ID="kernel/events_per_steady_second_128"
SCALE_KEY="kernel_scale_events_per_sec"
TESTNET_KEY="testnet_msgs_per_sec"
FILE="BENCH_kernel.json"
MAX_REGRESSION=0.25

rate_from() {
    # Extracts rate_per_sec for bench id $1 from BENCH_kernel.json file $2.
    awk -v id="$1" '
        index($0, "\"" id "\"") {
            if (match($0, /"rate_per_sec": *[0-9.]+/)) {
                print substr($0, RSTART + 16, RLENGTH - 16)
            }
        }' "$2"
}

# Extracts a top-level numeric field $1 from JSON file $2 (null -> empty).
field_from() {
    awk -v key="$1" '
        index($0, "\"" key "\":") {
            if (match($0, /[0-9][0-9.]*/)) {
                print substr($0, RSTART, RLENGTH)
            }
        }' "$2"
}

# gate ID BASELINE FRESH — prints the verdict; returns 1 on regression.
gate() {
    local id="$1" old="$2" new="$3"
    echo "==> baseline $id: $old"
    echo "==> fresh    $id: $new"
    local verdict ok=0
    verdict=$(awk -v old="$old" -v new="$new" -v max="$MAX_REGRESSION" 'BEGIN {
        change = (new - old) / old
        printf "change %+.1f%%\n", change * 100
        exit (change < -max) ? 1 : 0
    }') || ok=1
    echo "==> $verdict (fail threshold: -$(awk -v m="$MAX_REGRESSION" 'BEGIN{printf "%.0f", m*100}')%)"
    return $ok
}

if [[ ! -f "$FILE" ]]; then
    echo "error: no committed $FILE to compare against" >&2
    exit 1
fi

kernel_baseline=$(rate_from "$KERNEL_ID" "$FILE")
if [[ -z "$kernel_baseline" ]]; then
    echo "error: $KERNEL_ID not found in committed $FILE" >&2
    exit 1
fi
testnet_baseline=$(field_from "$TESTNET_KEY" "$FILE")
scale_baseline=$(field_from "$SCALE_KEY" "$FILE")

keep_baseline=$(mktemp)
cp "$FILE" "$keep_baseline"

echo "==> running cargo bench -p gocast-bench (rewrites $FILE)"
cargo bench -p gocast-bench

kernel_fresh=$(rate_from "$KERNEL_ID" "$FILE")
testnet_fresh=$(field_from "$TESTNET_KEY" "$FILE")
scale_fresh=$(field_from "$SCALE_KEY" "$FILE")
if [[ -z "$kernel_fresh" ]]; then
    cp "$keep_baseline" "$FILE"; rm -f "$keep_baseline"
    echo "error: $KERNEL_ID missing from fresh bench output" >&2
    exit 1
fi

failed=0
gate "$KERNEL_ID" "$kernel_baseline" "$kernel_fresh" || failed=1

if [[ -z "$scale_baseline" ]]; then
    echo "==> $SCALE_KEY: no committed baseline; skipping sharded-kernel gate"
elif [[ -z "$scale_fresh" ]]; then
    cp "$keep_baseline" "$FILE"; rm -f "$keep_baseline"
    echo "error: $SCALE_KEY missing from fresh bench output" >&2
    exit 1
else
    gate "$SCALE_KEY" "$scale_baseline" "$scale_fresh" || failed=1
fi

if [[ -z "$testnet_baseline" ]]; then
    echo "==> $TESTNET_KEY: no committed baseline; skipping wire gate"
elif [[ -z "$testnet_fresh" ]]; then
    echo "==> $TESTNET_KEY: loopback unavailable in this run; skipping wire gate"
else
    gate "$TESTNET_KEY" "$testnet_baseline" "$testnet_fresh" || failed=1
fi

if [[ "${1:-}" == "--update" ]]; then
    rm -f "$keep_baseline"
    echo "==> kept regenerated $FILE as new baseline"
else
    cp "$keep_baseline" "$FILE"
    rm -f "$keep_baseline"
fi

if [[ $failed -ne 0 ]]; then
    echo "FAIL: benchmark regressed more than 25% against the committed baseline" >&2
    exit 1
fi
echo "Bench guard passed."
