#!/usr/bin/env bash
# Bench-regression guard for the kernel hot path.
#
# Usage: scripts/bench_compare.sh [--update]
#
# Reads the committed kernel-throughput baseline from BENCH_kernel.json
# (`kernel/events_per_steady_second_128`), re-runs the benchmark suite
# (which rewrites BENCH_kernel.json), and fails if fresh throughput fell
# more than 25% below the baseline. With `--update` the regenerated file
# is kept as the new committed baseline; without it, the committed
# baseline is restored afterwards so a plain check leaves the tree clean.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_ID="kernel/events_per_steady_second_128"
FILE="BENCH_kernel.json"
MAX_REGRESSION=0.25

rate_from() {
    # Extracts rate_per_sec for $BENCH_ID from a BENCH_kernel.json file.
    awk -v id="$BENCH_ID" '
        index($0, "\"" id "\"") {
            if (match($0, /"rate_per_sec": *[0-9.]+/)) {
                print substr($0, RSTART + 16, RLENGTH - 16)
            }
        }' "$1"
}

if [[ ! -f "$FILE" ]]; then
    echo "error: no committed $FILE to compare against" >&2
    exit 1
fi

baseline=$(rate_from "$FILE")
if [[ -z "$baseline" ]]; then
    echo "error: $BENCH_ID not found in committed $FILE" >&2
    exit 1
fi

keep_baseline=$(mktemp)
cp "$FILE" "$keep_baseline"

echo "==> baseline $BENCH_ID: $baseline events/s"
echo "==> running cargo bench -p gocast-bench (rewrites $FILE)"
cargo bench -p gocast-bench

fresh=$(rate_from "$FILE")
if [[ -z "$fresh" ]]; then
    cp "$keep_baseline" "$FILE"; rm -f "$keep_baseline"
    echo "error: $BENCH_ID missing from fresh bench output" >&2
    exit 1
fi

echo "==> fresh    $BENCH_ID: $fresh events/s"

verdict=$(awk -v old="$baseline" -v new="$fresh" -v max="$MAX_REGRESSION" 'BEGIN {
    change = (new - old) / old
    printf "change %+.1f%%\n", change * 100
    exit (change < -max) ? 1 : 0
}') && ok=0 || ok=1
echo "==> $verdict (fail threshold: -$(awk -v m="$MAX_REGRESSION" 'BEGIN{printf "%.0f", m*100}')%)"

if [[ "${1:-}" == "--update" ]]; then
    rm -f "$keep_baseline"
    echo "==> kept regenerated $FILE as new baseline"
else
    cp "$keep_baseline" "$FILE"
    rm -f "$keep_baseline"
fi

if [[ $ok -ne 0 ]]; then
    echo "FAIL: $BENCH_ID regressed more than 25% against the committed baseline" >&2
    exit 1
fi
echo "Bench guard passed."
