#!/bin/bash
cd /root/repo
# Wait for the main suite.
while ! grep -q ALL_DONE logs/run_all.log 2>/dev/null; do sleep 20; done
cargo build --release -p gocast-experiments >> logs/followup.log 2>&1
for exp in fig3a fig3b ext4 ext5 txt2 txt4 adaptive fig5b fig1; do
  echo "=== $exp start $(date +%T) ===" >> logs/followup.log
  ./target/release/gocast-experiments $exp > logs/$exp.log 2>&1 || echo "FAILED: $exp" >> logs/followup.log
  echo "=== $exp done $(date +%T) ===" >> logs/followup.log
done
echo FOLLOWUP_DONE >> logs/followup.log
