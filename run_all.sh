#!/bin/bash
cd /root/repo
for exp in fig1 fig5a fig5b ext1 ext2 txt2 fig6 fig3a fig3b txt1 ext5 ext4 ablate fig4 ext3; do
  echo "=== $exp start $(date +%T) ==="
  ./target/release/gocast-experiments $exp > logs/$exp.log 2>&1 || echo "FAILED: $exp"
  echo "=== $exp done $(date +%T) ==="
done
echo ALL_DONE
