//! Cross-crate end-to-end tests: the full pipeline from protocol state
//! machines through the simulator to the analysis layer, asserting the
//! paper's qualitative results at test scale.

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig};
use gocast_analysis::{largest_component_fraction, MetricsRecorder};
use gocast_baselines::{expected_miss_fraction, PushGossipConfig, PushGossipNode};
use gocast_experiments::{figures, runners, ExpOptions, Proto};
use gocast_sim::{NodeId, SimBuilder, SimTime};
use gocast_tests::warmed_gocast;

fn tiny_opts(seed: u64) -> ExpOptions {
    let mut o = ExpOptions::quick().with_seed(seed);
    o.nodes = 96;
    o.sites = 96;
    o.warmup = Duration::from_secs(40);
    o.messages = 30;
    o.rate = 15.0;
    o.drain = Duration::from_secs(25);
    o.out_dir = None;
    o
}

#[test]
fn protocol_ordering_matches_figure3a() {
    // The paper's headline ordering: GoCast < proximity overlay <
    // random overlay on mean delay; pure gossip misses nodes.
    let opts = tiny_opts(71);
    let gocast = runners::run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.0);
    let prox = runners::run_delay(&opts, Proto::GoCast(GoCastConfig::proximity_overlay()), 0.0);
    let rand = runners::run_delay(&opts, Proto::GoCast(GoCastConfig::random_overlay()), 0.0);
    let gossip = runners::run_delay(&opts, Proto::PushGossip(PushGossipConfig::default()), 0.0);

    assert_eq!(gocast.incomplete_nodes, 0);
    assert_eq!(prox.incomplete_nodes, 0);
    assert_eq!(rand.incomplete_nodes, 0);

    let m = |s: &runners::DelayStats| s.per_node_avg.mean();
    assert!(m(&gocast) < m(&prox), "tree must beat overlay gossip");
    assert!(m(&prox) < m(&rand), "proximity must beat random links");
    assert!(
        m(&gocast) * 4 < m(&gossip),
        "GoCast {:?} should be several times faster than gossip {:?}",
        m(&gocast),
        m(&gossip)
    );
}

#[test]
fn figure3b_failure_ordering_holds() {
    let opts = tiny_opts(72);
    let gocast = runners::run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.2);
    let prox = runners::run_delay(&opts, Proto::GoCast(GoCastConfig::proximity_overlay()), 0.2);
    // Overlay-based protocols still deliver everything to live nodes.
    assert_eq!(
        gocast.incomplete_nodes, 0,
        "GoCast must survive 20% failures"
    );
    assert_eq!(prox.incomplete_nodes, 0);
    // GoCast still wins despite the broken tree (fragments + gossip).
    assert!(gocast.per_node_avg.mean() < prox.per_node_avg.mean());
    // And the broken tree costs GoCast relative to its failure-free run.
    let clean = runners::run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.0);
    assert!(gocast.per_node_avg.mean() > clean.per_node_avg.mean());
}

#[test]
fn figure_harnesses_produce_tables() {
    // Smoke-run each figure function at miniature scale; every harness
    // must return non-empty tables without panicking.
    let mut opts = tiny_opts(73);
    opts.nodes = 64;
    opts.warmup = Duration::from_secs(15);
    opts.messages = 10;
    opts.drain = Duration::from_secs(15);

    assert!(figures::fig1(&opts).iter().all(|t| t.rows() > 0));
    assert!(figures::fig5a(&opts)[0].rows() > 0);
    assert!(figures::fig5b(&opts, 10)[0].rows() >= 10);
    assert!(figures::ext1(&opts)[0].rows() > 0);
    assert!(figures::txt2(&opts)[0].rows() == 2);
}

#[test]
fn resilience_pipeline_matches_paper_shape() {
    // C_rand = 1 must keep the overlay connected at 25% failures
    // (the paper's headline resilience claim).
    let sim = warmed_gocast(128, 74, GoCastConfig::default(), 40);
    let snap = gocast::snapshot(&sim);
    let q25 = runners::resilience_q(&snap, 0.25, 5, 74);
    assert!(
        q25 > 0.99,
        "25% failures should leave the overlay connected, q = {q25}"
    );
    // Heavier failures are allowed to hurt but the trend must be monotone
    // within tolerance.
    let q50 = runners::resilience_q(&snap, 0.5, 5, 74);
    assert!(q50 <= q25 + 1e-9);
}

#[test]
fn empirical_gossip_misses_track_the_analytic_model() {
    // Run many small multicasts over the push-gossip baseline and compare
    // the per-node miss rate with e^-F.
    let n = 256;
    let msgs = 40u32;
    let net = gocast_net::synthetic_king(
        n,
        &gocast_net::SyntheticKingConfig {
            sites: 256,
            seed: 75,
            ..Default::default()
        },
    );
    let cfg = PushGossipConfig::default();
    let mut sim = SimBuilder::new(net)
        .seed(75)
        .build_with(MetricsRecorder::new(), |id| {
            PushGossipNode::new(id, cfg.clone())
        });
    sim.run_until(SimTime::from_secs(1));
    for i in 0..msgs {
        sim.schedule_command(
            SimTime::from_secs(1) + Duration::from_millis(50 * i as u64),
            NodeId::new(i % n as u32),
            GoCastCommand::Multicast,
        );
    }
    sim.run_until(SimTime::from_secs(40));
    let expected = msgs as u64 * (n as u64 - 1);
    let missed = expected - sim.recorder().delivered();
    let miss_rate = missed as f64 / expected as f64;
    let analytic = expected_miss_fraction(5.0);
    assert!(
        miss_rate < analytic * 4.0 + 0.01,
        "miss rate {miss_rate:.4} far above analytic {analytic:.4}"
    );
}

#[test]
fn overlay_snapshot_graph_analysis_roundtrip() {
    let sim = warmed_gocast(96, 76, GoCastConfig::default(), 40);
    let snap = gocast::snapshot(&sim);
    let adj = snap.overlay_adjacency();
    let alive = vec![true; 96];
    assert!(
        (largest_component_fraction(&adj, &alive) - 1.0).abs() < 1e-9,
        "adapted overlay must be connected"
    );
    let diam = gocast_analysis::diameter(&adj, &alive);
    assert!(
        (3..=10).contains(&diam),
        "96-node degree-6 overlay diameter should be small, got {diam}"
    );
    // Tree spans the overlay.
    assert_eq!(snap.tree_edge_count(), 95);
}

#[test]
fn full_experiment_runs_are_deterministic() {
    let opts = {
        let mut o = tiny_opts(77);
        o.nodes = 64;
        o.warmup = Duration::from_secs(20);
        o.messages = 10;
        o.drain = Duration::from_secs(10);
        o
    };
    let a = runners::run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.0);
    let b = runners::run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.0);
    assert_eq!(a.per_node_avg.len(), b.per_node_avg.len());
    assert_eq!(a.per_node_avg.mean(), b.per_node_avg.mean());
    assert_eq!(a.pulls, b.pulls);
    assert_eq!(a.redundancy, b.redundancy);
}

#[test]
fn frozen_system_does_not_churn_links() {
    let mut sim = warmed_gocast(64, 78, GoCastConfig::default(), 30);
    let live: Vec<NodeId> = sim.alive_nodes().collect();
    for id in live {
        sim.command_now(id, GoCastCommand::FreezeMaintenance);
    }
    sim.run_for(Duration::from_millis(10));
    let before: Vec<u64> = sim.recorder().link_changes_per_sec().to_vec();
    sim.run_for(Duration::from_secs(30));
    let after: Vec<u64> = sim.recorder().link_changes_per_sec().to_vec();
    let churn: u64 = after.iter().sum::<u64>() - before.iter().sum::<u64>();
    assert_eq!(churn, 0, "frozen overlay must not change links");
}
