//! Real-socket integration tests for the `gocast-testnet` fabric.
//!
//! Every test probes loopback availability first and skips (passing,
//! with a note on stderr) when the sandbox forbids socket creation, so
//! the suite stays green in network-less CI environments.

use std::time::Duration;

use gocast::{GoCastCommand, GoCastEvent};
use gocast_analysis::trace::{scan_trace, InvariantOracle, TraceAnalysis};
use gocast_sim::{NodeId, SimTime};
use gocast_testnet::{loopback_available, Testnet, TestnetConfig};

fn skip() -> bool {
    if loopback_available() {
        false
    } else {
        eprintln!("skipping: loopback UDP unavailable in this environment");
        true
    }
}

/// Two nodes on real sockets: both multicast, both deliver to the other,
/// and the fabric shuts down cleanly (no threads, nothing to leak — the
/// loop simply returns at its deadline).
#[test]
fn two_node_loopback_smoke() {
    if skip() {
        return;
    }
    let cfg = TestnetConfig::new(2).with_seed(11);
    let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
    // Let links and the tree form, then multicast from each side.
    net.schedule_command(
        SimTime::from_secs(2),
        NodeId::new(0),
        GoCastCommand::Multicast,
    );
    net.schedule_command(
        SimTime::from_millis(2500),
        NodeId::new(1),
        GoCastCommand::Multicast,
    );
    net.run_for(Duration::from_secs(4));

    let mut delivered_at = [[false; 2]; 2]; // [receiver][origin]
    for (_, node, ev) in net.trace() {
        if let GoCastEvent::Delivered { id, .. } = ev {
            delivered_at[node.index()][id.origin.index()] = true;
        }
    }
    assert!(
        delivered_at[1][0],
        "node 1 never delivered node 0's message"
    );
    assert!(
        delivered_at[0][1],
        "node 0 never delivered node 1's message"
    );
    let stats = net.stats();
    assert!(stats.datagrams_sent > 0 && stats.datagrams_received > 0);
    assert_eq!(stats.malformed, 0, "fabric produced malformed datagrams");
}

/// Sixteen nodes, a burst of multicasts, full drain: the wire-side JSONL
/// trace must satisfy every protocol invariant the oracle knows, and all
/// messages must reach all peers.
#[test]
fn sixteen_node_run_is_invariant_clean() {
    if skip() {
        return;
    }
    let nodes = 16;
    let messages = 20;
    let cfg = TestnetConfig::new(nodes).with_seed(3);
    let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
    for k in 0..messages {
        net.schedule_command(
            SimTime::from_millis(2500 + 50 * k as u64),
            NodeId::new((k % nodes) as u32),
            GoCastCommand::Multicast,
        );
    }
    net.run_for(Duration::from_secs(7));

    let jsonl = net.trace_jsonl();
    let mut oracle = InvariantOracle::for_protocol(&cfg.protocol);
    let mut analysis = TraceAnalysis::new();
    let records = scan_trace(&jsonl[..], |rec| {
        oracle.check(&rec);
        analysis.feed(&rec);
    })
    .expect("wire trace parses with the PR-2 pipeline");
    oracle.finish();
    assert!(records > 0, "empty wire trace");
    assert!(
        oracle.is_clean(),
        "oracle violations on wire trace: {:?}",
        oracle.violations()
    );
    let report = analysis.report();
    assert_eq!(report.messages, messages, "trace lost injected messages");
    let expected = (messages * (nodes - 1)) as u64;
    assert!(
        report.deliveries >= expected * 999 / 1000,
        "delivery {}/{expected} below 99.9%",
        report.deliveries
    );
}

/// The delivery manifest — which node delivered which message — must be
/// byte-identical whether the fabric runs on one event loop or four.
/// Wall-clock timestamps differ shard to shard (and run to run), so the
/// determinism gate is the canonical sorted digest, not raw trace bytes.
#[test]
fn delivery_manifest_is_identical_across_shard_counts() {
    if skip() {
        return;
    }
    let run = |shards: usize| -> String {
        let nodes = 8;
        let messages = 6u64;
        let cfg = TestnetConfig::new(nodes).with_seed(21).with_shards(shards);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        for k in 0..messages {
            net.schedule_command(
                SimTime::from_millis(2500 + 100 * k),
                NodeId::new((k % nodes as u64) as u32),
                GoCastCommand::Multicast,
            );
        }
        net.run_for(Duration::from_secs(7));
        let delivered = net
            .trace()
            .iter()
            .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
            .count() as u64;
        assert_eq!(
            delivered,
            messages * (nodes as u64 - 1),
            "fault-free {shards}-shard run failed to drain fully"
        );
        net.delivery_manifest()
    };
    let single = run(1);
    let sharded = run(4);
    assert!(!single.is_empty());
    assert_eq!(
        single, sharded,
        "delivery manifest diverged between 1 and 4 shards"
    );
}

/// Sixty-four nodes through the sharded wire path must still agree with
/// the simulator: the full sim-vs-wire conformance gate at 4 shards.
///
/// Delivery (≥ 99.9% per side) and the invariant oracle (zero
/// violations) stay at the strict defaults. The hop-*shape* tolerances
/// are widened relative to the 12/16-node gates: 64 wall-clock nodes on
/// four shard threads oversubscribe small CI machines, so wire-side
/// timers fire late during tree formation and the measured tree runs a
/// few hops deeper than the contention-free simulator's — scheduling
/// noise, not protocol divergence. A longer warm-up gives the
/// RTT-adaptive tree time to flatten before injection starts.
#[test]
fn sixty_four_node_sharded_conformance_gate() {
    if skip() {
        return;
    }
    let mut opts = gocast_testnet::ConformanceOptions::new(64, 60)
        .with_seed(42)
        .with_shards(4);
    opts.warmup = Duration::from_secs(6);
    opts.tol.mean_hops_diff = 4.0;
    opts.tol.hist_tv = 0.55;
    let report = opts.run().expect("conformance harness ran");
    assert!(
        report.passed(),
        "64-node sharded conformance failed:\n{}",
        report.render()
    );
}
