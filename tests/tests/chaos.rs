//! Chaos testing: continuous multicast traffic under randomized node
//! crashes, link cuts, graceful leaves, and link heals — asserting the
//! paper's core dependability property (stable delivery to the surviving,
//! connected membership) rather than any fixed failure script.

use std::collections::HashSet;
use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig, GoCastEvent, MsgId};
use gocast_analysis::MetricsRecorder;
use gocast_sim::{NodeId, SimTime};
use gocast_tests::warmed_gocast;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn continuous_traffic_survives_randomized_chaos() {
    let n = 96;
    // Long GC so `has_message` can audit the whole run at the end (the
    // default b = 2 min would reclaim early messages before the check).
    let cfg = GoCastConfig {
        gc_wait: Duration::from_secs(3600),
        ..Default::default()
    };
    let mut sim = warmed_gocast(n, 1717, cfg, 40);
    let mut rng = SmallRng::seed_from_u64(4242);

    let mut crashed: HashSet<NodeId> = HashSet::new();
    let mut left: HashSet<NodeId> = HashSet::new();
    let mut cut_links: Vec<(NodeId, NodeId)> = Vec::new();
    let mut injected: Vec<(MsgId, SimTime)> = Vec::new();
    let mut seq_per_node = vec![0u32; n];

    // 120 seconds of chaos: every 500 ms, one random action.
    for step in 0..240 {
        let now = sim.now();
        match rng.gen_range(0..10) {
            // 60%: multicast from a random healthy node.
            0..=5 => {
                let candidates: Vec<NodeId> =
                    sim.alive_nodes().filter(|id| !left.contains(id)).collect();
                let src = candidates[rng.gen_range(0..candidates.len())];
                sim.command_now(src, GoCastCommand::Multicast);
                injected.push((MsgId::new(src, seq_per_node[src.index()]), now));
                seq_per_node[src.index()] += 1;
            }
            // 10%: crash a node (keep at most 15% down).
            6 => {
                if crashed.len() < n * 15 / 100 {
                    let candidates: Vec<NodeId> =
                        sim.alive_nodes().filter(|id| !left.contains(id)).collect();
                    let victim = candidates[rng.gen_range(0..candidates.len())];
                    sim.fail_node(victim);
                    crashed.insert(victim);
                }
            }
            // 10%: cut a random live link.
            7 => {
                let a = NodeId::new(rng.gen_range(0..n as u32));
                if sim.is_alive(a) {
                    let first = sim.node(a).overlay_links().next().map(|(b, _, _)| b);
                    if let Some(b) = first {
                        sim.fail_link(a, b);
                        cut_links.push((a, b));
                    }
                }
            }
            // 10%: heal the oldest cut link.
            8 => {
                if !cut_links.is_empty() {
                    let (a, b) = cut_links.remove(0);
                    sim.heal_link(a, b);
                }
            }
            // 10%: graceful leave (keep at most 10% gone this way).
            _ => {
                if left.len() < n / 10 {
                    let candidates: Vec<NodeId> = sim
                        .alive_nodes()
                        .filter(|id| !left.contains(id) && !crashed.contains(id))
                        .collect();
                    let victim = candidates[rng.gen_range(0..candidates.len())];
                    sim.command_now(victim, GoCastCommand::Leave);
                    left.insert(victim);
                }
            }
        }
        sim.run_for(Duration::from_millis(500));
        let _ = step;
    }

    // Quiesce: heal everything, stop injecting, allow repairs and pulls to
    // finish.
    for (a, b) in cut_links.drain(..) {
        sim.heal_link(a, b);
    }
    sim.run_for(Duration::from_secs(120));

    // Survivors: alive, never left.
    let survivors: Vec<NodeId> = sim.alive_nodes().filter(|id| !left.contains(id)).collect();
    assert!(survivors.len() >= n - n * 15 / 100 - n / 10 - 1);

    // Every survivor must hold every message that was injected at least
    // 30 s before the end of chaos (the tail may still be propagating when
    // sources die, so allow the final few to be partial).
    let cutoff = SimTime::from_nanos(
        sim.now()
            .as_nanos()
            .saturating_sub(Duration::from_secs(150).as_nanos() as u64),
    );
    let mut checked = 0u64;
    let mut missing = 0u64;
    for &(id, at) in &injected {
        if at > cutoff {
            continue;
        }
        for &node in &survivors {
            checked += 1;
            if node != id.origin && !sim.node(node).has_message(id) {
                missing += 1;
            }
        }
    }
    assert!(
        checked > 1000,
        "chaos produced too little traffic: {checked}"
    );
    let loss = missing as f64 / checked as f64;
    assert!(
        loss < 0.005,
        "{missing}/{checked} (node, message) pairs missing ({loss:.4})"
    );

    // The overlay healed: survivors are connected again.
    let snap = gocast::snapshot(&sim);
    let adj = snap.overlay_adjacency();
    let mut alive_mask = vec![false; n];
    for &s in &survivors {
        alive_mask[s.index()] = true;
    }
    let q = gocast_analysis::largest_component_fraction(&adj, &alive_mask);
    assert!(q > 0.99, "survivors should reconnect, q = {q}");
}

#[test]
fn repeated_chaos_seeds_are_deterministic() {
    // The chaos schedule is driven by seeds only; two runs agree exactly.
    let run = |seed: u64| {
        let mut sim = warmed_gocast(48, seed, GoCastConfig::default(), 20);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..40 {
            if rng.gen_bool(0.3) {
                let victims: Vec<NodeId> = sim.alive_nodes().collect();
                let v = victims[rng.gen_range(0..victims.len())];
                if sim.alive_nodes().count() > 40 {
                    sim.fail_node(v);
                }
            } else {
                let live: Vec<NodeId> = sim.alive_nodes().collect();
                let src = live[rng.gen_range(0..live.len())];
                sim.command_now(src, GoCastCommand::Multicast);
            }
            sim.run_for(Duration::from_millis(300));
        }
        sim.run_for(Duration::from_secs(10));
        let rec: &MetricsRecorder = sim.recorder();
        (rec.delivered(), rec.pulls(), rec.redundant())
    };
    assert_eq!(run(31), run(31));
}

/// The invariant oracle must flag corrupted traces: a delivery that
/// precedes the origin's injection and a duplicate delivery spliced into
/// an otherwise valid synthetic JSONL trace.
#[test]
fn oracle_flags_injected_trace_violations() {
    use gocast_analysis::trace::{scan_trace, InvariantOracle, ViolationKind};

    let trace = "\
{\"t_us\":500,\"node\":3,\"ev\":\"delivered\",\"origin\":0,\"seq\":1,\"from\":0,\"hop\":1,\"via\":\"tree\"}\n\
{\"t_us\":1000,\"node\":0,\"ev\":\"injected\",\"origin\":0,\"seq\":1}\n\
{\"t_us\":1200,\"node\":1,\"ev\":\"delivered\",\"origin\":0,\"seq\":1,\"from\":0,\"hop\":1,\"via\":\"tree\"}\n\
{\"t_us\":1300,\"node\":2,\"ev\":\"delivered\",\"origin\":0,\"seq\":1,\"from\":1,\"hop\":2,\"via\":\"tree\"}\n\
{\"t_us\":1400,\"node\":1,\"ev\":\"delivered\",\"origin\":0,\"seq\":1,\"from\":2,\"hop\":3,\"via\":\"pull\"}\n\
{\"t_us\":1500,\"node\":2,\"ev\":\"pull_requested\",\"origin\":0,\"seq\":1,\"to\":1}\n";

    let mut oracle = InvariantOracle::default();
    let records = scan_trace(trace.as_bytes(), |r| oracle.check(&r)).unwrap();
    oracle.finish();
    assert_eq!(records, 6);
    let kinds: Vec<ViolationKind> = oracle.violations().iter().map(|v| v.kind).collect();
    assert_eq!(
        kinds,
        vec![
            ViolationKind::DeliveryBeforeSend, // node 3 delivered at 500 < inject 1000
            ViolationKind::DuplicateDelivery,  // node 1 delivered twice
            ViolationKind::PullAfterDelivery,  // node 2 pulled after delivering
        ],
        "violations: {:#?}",
        oracle.violations()
    );
}

/// Property: clean 64-node runs — warmup, churnless dissemination, drain —
/// satisfy every protocol invariant, across seeds, with the oracle riding
/// the simulation online as a recorder.
#[test]
fn clean_runs_produce_zero_violations() {
    use gocast_analysis::InvariantOracle;
    use gocast_net::{synthetic_king, SyntheticKingConfig};
    use gocast_sim::SimBuilder;

    for seed in [7u64, 21, 1024] {
        let n = 64;
        let cfg = GoCastConfig::default();
        let net = synthetic_king(
            n,
            &SyntheticKingConfig {
                sites: n,
                seed: seed ^ 0xABCD,
                ..Default::default()
            },
        );
        let mut boot = gocast::bootstrap_random_graph(n, cfg.c_degree() / 2, seed);
        let oracle = InvariantOracle::for_protocol(&cfg);
        let mut sim = SimBuilder::new(net).seed(seed).build_with(oracle, |id| {
            let (links, members) = boot(id);
            gocast::GoCastNode::with_initial_links(id, cfg.clone(), links, members)
        });
        sim.run_for(Duration::from_secs(40));
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            let live: Vec<NodeId> = sim.alive_nodes().collect();
            let src = live[rng.gen_range(0..live.len())];
            sim.command_now(src, GoCastCommand::Multicast);
            sim.run_for(Duration::from_millis(200));
        }
        sim.run_for(Duration::from_secs(30));
        let oracle = sim.recorder_mut();
        oracle.finish();
        assert!(
            oracle.records_checked() > 5_000,
            "seed {seed}: run too quiet ({})",
            oracle.records_checked()
        );
        assert!(oracle.is_clean(), "seed {seed}: {:#?}", oracle.violations());
    }
}

/// Regression guard: chaos must not starve the recorder of events.
#[test]
fn chaos_emits_link_and_delivery_events() {
    let mut sim = warmed_gocast(48, 99, GoCastConfig::default(), 20);
    sim.fail_node(NodeId::new(5));
    sim.command_now(NodeId::new(1), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(30));
    let rec = sim.recorder();
    assert!(rec.delivered() >= 46);
    let _ = rec.link_changes_per_sec().iter().sum::<u64>();
    let _: &Vec<(GoCastEvent, ())> = &Vec::new(); // type anchor, no-op
}
