//! Regression suite for the scenario-driven chaos engine: Poisson churn
//! across seeds with replay determinism, partition-then-heal recovery,
//! and graceful-leave → rejoin reattachment.

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig};
use gocast_experiments::chaos::{chaos_sweep, run_chaos};
use gocast_experiments::ExpOptions;
use gocast_sim::{NodeId, Scenario, ScenarioEnv, SimTime, Split};
use gocast_tests::warmed_gocast;

fn chaos_opts(seed: u64) -> ExpOptions {
    let mut o = ExpOptions::quick().with_seed(seed);
    o.nodes = 64;
    o.sites = 64;
    o.warmup = Duration::from_secs(25);
    o.messages = 30;
    o.rate = 2.0;
    o.drain = Duration::from_secs(30);
    o.out_dir = None;
    o
}

/// The headline chaos regression: 64 nodes under Poisson churn, five
/// seeds. Every run must keep the invariant oracle clean and deliver to
/// (nearly) every node that stayed; replaying the same options — serial
/// or fanned over worker threads — must reproduce every metric
/// byte-for-byte.
#[test]
fn poisson_churn_is_clean_and_replays_byte_identically() {
    let opts = chaos_opts(500);
    let scenario = Scenario::new().churn(Duration::ZERO, Duration::from_secs(30), 0.3, 0.3);

    let first = chaos_sweep(&opts, &scenario, 5);
    assert_eq!(first.len(), 5);
    let mut saw_faults = 0usize;
    for o in &first {
        assert_eq!(
            o.violations, 0,
            "seed {}: oracle violations under churn",
            o.seed
        );
        assert!(o.oracle_records > 10_000, "seed {}: run too quiet", o.seed);
        assert_eq!(o.injected, 30);
        assert!(
            o.delivery_ratio() > 0.97,
            "seed {}: delivery ratio {} too low",
            o.seed,
            o.delivery_ratio()
        );
        saw_faults += o.plan_len;
    }
    assert!(saw_faults > 10, "churn produced almost no faults");

    // Replay: identical options, identical summaries — byte for byte.
    let replay = chaos_sweep(&opts, &scenario, 5);
    for (a, b) in first.iter().zip(&replay) {
        assert_eq!(a.summary_string(), b.summary_string());
    }

    // And the job count must not leak into any number.
    let fanned = chaos_sweep(&opts.clone().with_jobs(4), &scenario, 5);
    for (a, b) in first.iter().zip(&fanned) {
        assert_eq!(
            a.summary_string(),
            b.summary_string(),
            "--jobs changed a chaos metric"
        );
    }
}

/// Partition-then-heal: cross-partition traffic is dropped while the
/// split holds, each side keeps delivering to itself, and after the heal
/// the overlay reconnects into one component and *new* traffic reaches
/// everyone again.
///
/// Note what is deliberately **not** asserted: retroactive backfill.
/// GoCast's gossip digests are incremental (each neighbor is only told
/// about receptions newer than the last digest sent to it), so messages
/// injected while the split is up are not re-advertised across it after
/// the heal. Recovery means the *post-heal* delivery ratio returns to 1,
/// which is exactly what the sliding-window metric measures.
#[test]
fn partition_heals_and_delivery_recovers() {
    let n = 64usize;
    let cfg = GoCastConfig {
        // Keep stores for the end-of-run audit.
        gc_wait: Duration::from_secs(3600),
        ..Default::default()
    };
    let mut sim = warmed_gocast(n, 901, cfg, 25);
    let start = sim.now();

    let p_form = Duration::from_secs(5);
    let p_heal = Duration::from_secs(20);
    let scenario = Scenario::new().partition_at(p_form, p_heal, Split::Halves);
    let plan = scenario.compile(&ScenarioEnv::new(n, 901).starting_at(start));
    plan.schedule_into(
        &mut sim,
        |contact| GoCastCommand::Join { contact },
        || GoCastCommand::Leave,
    );

    // 30 messages over 30 s, alternating sides, so the sequence spans
    // before / during / after the partition.
    let mut expected = Vec::new();
    let mut seq = vec![0u32; n];
    for i in 0..30u64 {
        let src = if i % 2 == 0 { 0u32 } else { n as u32 - 1 };
        let offset = Duration::from_secs(1 + i);
        let at = start + offset;
        sim.schedule_command(at, NodeId::new(src), GoCastCommand::Multicast);
        expected.push((
            gocast::MsgId::new(NodeId::new(src), seq[src as usize]),
            offset,
        ));
        seq[src as usize] += 1;
    }

    // Mid-partition: the split is installed and actually dropping traffic.
    sim.run_until(start + Duration::from_secs(12));
    assert!(sim.is_partitioned());
    sim.run_until(start + Duration::from_secs(21));
    assert!(!sim.is_partitioned(), "heal was scheduled at +20 s");
    assert!(
        sim.kernel_stats().partition_drops > 0,
        "a halves split must drop cross-side messages"
    );

    // Drain: give failure detection, overlay repair, and the last
    // injections (at +30 s) time to complete.
    sim.run_until(start + Duration::from_secs(90));

    // The overlay reconnected into one component.
    let snap = gocast::snapshot(&sim);
    let q = gocast_analysis::largest_component_fraction(&snap.overlay_adjacency(), &vec![true; n]);
    assert!(q > 0.999, "overlay should reconnect after heal, q = {q}");

    // Delivery audit, classified by injection time. `Halves` puts ids
    // 0..n/2 on side 0; in-flight slack of 2 s around the form instant is
    // classified as "during" (only the same-side guarantee applies).
    let side = |id: NodeId| u32::from(id.index() >= n / 2);
    let mut hard_missing = Vec::new();
    for &(id, offset) in &expected {
        let during = offset + Duration::from_secs(2) > p_form && offset <= p_heal;
        for i in 0..n as u32 {
            let node = NodeId::new(i);
            if node == id.origin || sim.node(node).has_message(id) {
                continue;
            }
            if during && side(node) != side(id.origin) {
                continue; // cross-side loss while split: allowed.
            }
            hard_missing.push((id, offset, node));
        }
    }
    assert!(
        hard_missing.is_empty(),
        "guaranteed deliveries missing after heal: {hard_missing:?}"
    );
}

/// The end-to-end partition preset through the experiment runner: the
/// oracle stays clean, both burst instants (form, heal) get repair
/// measurements, and the sliding-window delivery ratio shows the
/// signature dip-and-recover — ~1 before the split, degraded while it
/// holds, back above 0.99 for every window injected after the heal.
#[test]
fn partition_scenario_through_runner_recovers() {
    let mut opts = chaos_opts(700);
    opts.messages = 60;
    opts.drain = Duration::from_secs(40);
    let heal_offset = Duration::from_secs(15);
    let scenario = Scenario::new().partition_at(Duration::from_secs(5), heal_offset, Split::Halves);
    let o = run_chaos(&opts, &scenario);
    assert_eq!(o.violations, 0, "oracle violations across a partition");
    assert_eq!(o.repairs.len(), 2, "form + heal bursts");
    assert!(
        o.kernel.partition_drops > 0,
        "partition was scheduled but dropped nothing"
    );

    // Windowed delivery: full before the split, a real dip while it
    // holds, and full again for everything injected after the heal.
    let heal_at = (opts.warmup + heal_offset).as_secs_f64();
    let first = o.windows.first().expect("at least one window");
    assert!(
        first.ratio() >= 0.99,
        "pre-partition window already degraded: {:.4}",
        first.ratio()
    );
    let dip = o
        .windows
        .iter()
        .map(|w| w.ratio())
        .fold(f64::INFINITY, f64::min);
    assert!(
        dip < 0.9,
        "expected a delivery dip during the split, min window ratio {dip:.4}"
    );
    for w in o
        .windows
        .iter()
        .filter(|w| w.start.as_secs_f64() >= heal_at)
    {
        assert!(
            w.ratio() >= 0.99,
            "post-heal window at {:.0} s did not recover: {:.4}",
            w.start.as_secs_f64(),
            w.ratio()
        );
    }
    assert!(
        o.delivery_ratio() > 0.75,
        "overall ratio {} implausibly low even counting the split",
        o.delivery_ratio()
    );
}

/// Graceful leave followed by a scenario-driven rejoin: the returning
/// node must unfreeze, reattach to the tree, and receive new multicasts
/// (regression test for rejoin leaving maintenance frozen and stale tree
/// state behind).
#[test]
fn leaver_rejoins_unfrozen_and_reattaches() {
    let n = 32usize;
    let mut sim = warmed_gocast(n, 311, GoCastConfig::default(), 20);
    let start = sim.now();
    let node = NodeId::new(5);

    sim.schedule_command(start + Duration::from_secs(1), node, GoCastCommand::Leave);
    sim.run_until(start + Duration::from_secs(8));
    assert!(!sim.node(node).is_joined(), "leave should take effect");
    assert!(sim.node(node).is_frozen(), "leave freezes maintenance");

    sim.command_now(
        node,
        GoCastCommand::Join {
            contact: NodeId::new(0),
        },
    );
    sim.run_for(Duration::from_secs(40));
    let returned = sim.node(node);
    assert!(returned.is_joined(), "rejoin must complete");
    assert!(!returned.is_frozen(), "rejoin must unfreeze maintenance");
    assert!(
        returned.is_root() || returned.tree_parent().is_some(),
        "rejoined node must reattach to the tree"
    );
    assert!(
        !returned.is_root(),
        "a rejoiner must not hijack the root role (stale heartbeat clock)"
    );

    // New traffic reaches the returnee (nothing was injected before, so
    // this is the origin's sequence number 0).
    let origin = NodeId::new(1);
    sim.command_now(origin, GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(10));
    assert!(
        sim.node(node).has_message(gocast::MsgId::new(origin, 0)),
        "rejoined node missed a post-rejoin multicast"
    );
}

/// `SimTime` plumbing: scenario offsets compiled against a warmed
/// simulation land in the future, so `schedule_into` never trips the
/// past-timestamp guard.
#[test]
fn plans_always_schedule_into_the_future() {
    let mut sim = warmed_gocast(16, 17, GoCastConfig::default(), 10);
    let plan = Scenario::new()
        .crash_at(Duration::ZERO, NodeId::new(3))
        .compile(&ScenarioEnv::new(16, 17).starting_at(sim.now()));
    // `at == now` is valid (events at the current instant still run).
    plan.schedule_into(
        &mut sim,
        |contact| GoCastCommand::Join { contact },
        || GoCastCommand::Leave,
    );
    sim.run_for(Duration::from_secs(1));
    assert!(!sim.is_alive(NodeId::new(3)));
    assert_eq!(sim.kernel_stats().control_events, 1);
    assert!(sim.now() > SimTime::ZERO);
}
