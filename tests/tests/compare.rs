//! Head-to-head comparison guarantees: the `compare` harness must be
//! deterministic across worker-thread counts (its whole point is
//! attributing differences to the *protocol*, so the harness itself may
//! not introduce any), and both stacks must hold the universal safety
//! invariants under chaos at a respectable scale.

use std::time::Duration;

use gocast_experiments::chaos::{builtin_scenario, run_chaos};
use gocast_experiments::compare::{compare_sweep, compare_table, COMPARE_PRESETS};
use gocast_experiments::{ExpOptions, StackKind};

fn small() -> ExpOptions {
    let mut opts = ExpOptions::quick();
    opts.nodes = 32;
    opts.sites = 32;
    opts.warmup = Duration::from_secs(10);
    opts.messages = 6;
    opts.rate = 2.0;
    opts.drain = Duration::from_secs(15);
    opts
}

/// The side-by-side table (and hence `compare.csv`) is byte-identical at
/// `--jobs 1` and `--jobs 4`, for every default preset, covering both
/// stacks and two seeds. So are the underlying per-run digests.
#[test]
fn compare_output_is_byte_identical_across_job_counts() {
    let serial = compare_sweep(&small().with_jobs(1), COMPARE_PRESETS, 2).unwrap();
    let threaded = compare_sweep(&small().with_jobs(4), COMPARE_PRESETS, 2).unwrap();
    assert_eq!(serial.len(), COMPARE_PRESETS.len() * 2);
    assert_eq!(serial.len(), threaded.len());
    for (a, b) in serial.iter().zip(&threaded) {
        assert_eq!(a.preset, b.preset);
        assert_eq!(
            a.gocast.summary_string(),
            b.gocast.summary_string(),
            "gocast run ({}, seed {}) differs across job counts",
            a.preset,
            a.seed()
        );
        assert_eq!(
            a.plumtree.summary_string(),
            b.plumtree.summary_string(),
            "plumtree run ({}, seed {}) differs across job counts",
            a.preset,
            a.seed()
        );
    }
    assert_eq!(
        compare_table(&serial).to_string(),
        compare_table(&threaded).to_string(),
        "compare.csv content must not depend on --jobs"
    );
}

/// Both stacks complete a 64-node churn run with zero oracle violations
/// and near-total delivery to the nodes that owed one.
#[test]
fn both_stacks_survive_chaos_at_64_nodes_with_zero_violations() {
    let mut opts = ExpOptions::quick();
    opts.nodes = 64;
    opts.sites = 64;
    opts.warmup = Duration::from_secs(15);
    opts.messages = 10;
    opts.rate = 2.0;
    opts.drain = Duration::from_secs(20);
    let scenario = builtin_scenario("churn", &opts).unwrap();
    for stack in StackKind::ALL {
        let o = run_chaos(&opts.clone().with_stack(stack), &scenario);
        assert_eq!(o.stack, stack.name());
        assert_eq!(o.injected, 10, "{stack}: wrong injection count");
        assert_eq!(
            o.violations, 0,
            "{stack}: oracle violations under churn at 64 nodes"
        );
        assert!(
            o.oracle_records > 1_000,
            "{stack}: run too quiet ({} records)",
            o.oracle_records
        );
        assert!(
            o.delivery_ratio() > 0.95,
            "{stack}: delivery ratio {} too low",
            o.delivery_ratio()
        );
    }
}

/// The two stacks genuinely differ on the wire: same seed and scenario,
/// but Plumtree reports no tree capability, carves its structure by
/// pruning (so redundant receptions show up early), and its digest never
/// collides with GoCast's.
#[test]
fn stacks_are_distinguishable_under_identical_conditions() {
    let opts = small();
    let scenario = builtin_scenario("baseline", &opts).unwrap();
    let go = run_chaos(&opts.clone().with_stack(StackKind::GoCast), &scenario);
    let pt = run_chaos(&opts.clone().with_stack(StackKind::Plumtree), &scenario);
    assert_eq!(go.seed, pt.seed);
    assert_eq!(go.injected, pt.injected);
    assert_ne!(
        go.summary_string(),
        pt.summary_string(),
        "different protocols must not produce the same digest"
    );
    assert!(go.delivery_ratio() > 0.99, "gocast baseline must deliver");
    assert!(pt.delivery_ratio() > 0.99, "plumtree baseline must deliver");
}
