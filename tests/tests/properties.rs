//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use std::collections::HashSet;
use std::time::Duration;

use gocast::{DegreeInfo, GoCastMsg, LinkKind, MsgId, ProbeKind, HEADER_BYTES};
use gocast_analysis::{component_sizes, largest_component_fraction, Cdf, Histogram};
use gocast_membership::MemberView;
use gocast_net::{synthetic_king, LandmarkVector, SyntheticKingConfig};
use gocast_sim::Wire as _;
use gocast_sim::{EventQueue, LatencyModel, NodeId, SimTime};
use proptest::prelude::*;

proptest! {
    // ------------------------------------------------------------------
    // Event queue: a deterministic priority queue.
    // ------------------------------------------------------------------

    #[test]
    fn event_queue_pops_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some(ev) = q.pop() {
            let (t, i) = ev.payload;
            prop_assert_eq!(ev.at, SimTime::from_nanos(t));
            if let Some((pt, pi)) = prev {
                prop_assert!(pt <= t, "time order violated");
                if pt == t {
                    prop_assert!(pi < i, "insertion order violated on tie");
                }
            }
            prev = Some((t, i));
        }
    }

    // ------------------------------------------------------------------
    // Member view: bounded, self-free, duplicate-free under any op mix.
    // ------------------------------------------------------------------

    #[test]
    fn member_view_invariants_under_random_ops(
        ops in proptest::collection::vec((0u8..3, 0u32..64), 1..300),
        cap in 1usize..24,
    ) {
        let owner = NodeId::new(7);
        let mut view = MemberView::new(owner, cap);
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        for (op, id) in ops {
            let id = NodeId::new(id);
            match op {
                0 => { view.insert(id, &mut rng); }
                1 => { view.remove(id); }
                _ => { view.next_round_robin(); }
            }
            prop_assert!(view.len() <= cap);
            prop_assert!(!view.contains(owner));
            let seen: HashSet<_> = view.iter().collect();
            prop_assert_eq!(seen.len(), view.len(), "duplicates in view");
        }
    }

    #[test]
    fn member_view_round_robin_is_fair(ids in proptest::collection::hash_set(0u32..100, 1..30)) {
        let mut rng = rand::SeedableRng::seed_from_u64(2);
        let mut view = MemberView::new(NodeId::new(200), 64);
        for &id in &ids {
            view.insert(NodeId::new(id), &mut rng);
        }
        let k = view.len();
        let mut seen = HashSet::new();
        for _ in 0..k {
            seen.insert(view.next_round_robin().unwrap());
        }
        prop_assert_eq!(seen.len(), k, "one full cycle must visit every member once");
    }

    // ------------------------------------------------------------------
    // CDF: order statistics behave.
    // ------------------------------------------------------------------

    #[test]
    fn cdf_percentiles_are_monotone(mut vals in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let cdf = Cdf::from_durations(vals.iter().map(|&v| Duration::from_nanos(v)));
        let mut prev = Duration::ZERO;
        for i in 0..=10 {
            let p = cdf.percentile(i as f64 / 10.0);
            prop_assert!(p >= prev);
            prev = p;
        }
        vals.sort_unstable();
        prop_assert_eq!(cdf.min(), Duration::from_nanos(vals[0]));
        prop_assert_eq!(cdf.max(), Duration::from_nanos(*vals.last().unwrap()));
        prop_assert!(cdf.mean() >= cdf.min() && cdf.mean() <= cdf.max());
    }

    #[test]
    fn histogram_fractions_sum_to_one(vals in proptest::collection::vec(0usize..12, 1..300)) {
        let h = Histogram::from_values(vals.iter().copied());
        let total: f64 = (0..=h.max_value()).map(|v| h.fraction(v)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((h.cumulative_fraction(h.max_value()) - 1.0).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Graph analysis: components partition the live nodes.
    // ------------------------------------------------------------------

    #[test]
    fn components_partition_live_nodes(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
        dead in proptest::collection::hash_set(0u32..40, 0..10),
    ) {
        let n = 40;
        let mut adj = vec![Vec::new(); n];
        for (a, b) in edges {
            if a != b {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        let alive: Vec<bool> = (0..n as u32).map(|i| !dead.contains(&i)).collect();
        let sizes = component_sizes(&adj, &alive);
        let live = alive.iter().filter(|&&a| a).count();
        prop_assert_eq!(sizes.iter().sum::<usize>(), live, "components must cover live nodes");
        for w in sizes.windows(2) {
            prop_assert!(w[0] >= w[1], "sizes sorted descending");
        }
        let q = largest_component_fraction(&adj, &alive);
        prop_assert!((0.0..=1.0).contains(&q) || live == 0);
    }

    // ------------------------------------------------------------------
    // Latency models: symmetry, zero diagonal, calibration bounds.
    // ------------------------------------------------------------------

    #[test]
    fn synthetic_king_is_a_valid_latency_model(seed in 0u64..50, nodes in 2usize..40) {
        let cfg = SyntheticKingConfig { sites: 48, seed, ..Default::default() };
        let net = synthetic_king(nodes, &cfg);
        prop_assert_eq!(net.len(), nodes);
        for i in 0..nodes as u32 {
            prop_assert_eq!(net.one_way(NodeId::new(i), NodeId::new(i)), Duration::ZERO);
            for j in (i + 1)..nodes as u32 {
                let a = net.one_way(NodeId::new(i), NodeId::new(j));
                let b = net.one_way(NodeId::new(j), NodeId::new(i));
                prop_assert_eq!(a, b, "symmetry");
                prop_assert!(a <= Duration::from_millis(399), "cap");
                prop_assert!(a > Duration::ZERO, "distinct nodes have latency");
            }
        }
    }

    // ------------------------------------------------------------------
    // Wire codec: arbitrary messages round-trip and the accounted size is
    // exactly what the codec produces.
    // ------------------------------------------------------------------

    #[test]
    fn codec_roundtrip_and_exact_size(
        variant in 0u8..6,
        origin in 0u32..1000,
        seq in 0u32..10_000,
        age in 0u64..10_000_000,
        size in 0u32..100_000,
        ids in proptest::collection::vec((0u32..100, 0u32..100, 0u64..1_000_000), 0..20),
        rtts in proptest::collection::vec(0u64..400_000, 0..8),
        degs in (0u16..20, 0u16..20, 1u16..20, 1u16..20),
    ) {
        let coords = LandmarkVector::from_rtts(
            rtts.iter().map(|&v| Duration::from_micros(v)),
        );
        let degrees = DegreeInfo { d_rand: degs.0, d_near: degs.1, t_rand: degs.2, t_near: degs.3 };
        let id = MsgId::new(NodeId::new(origin), seq);
        let msg = match variant {
            0 => GoCastMsg::Data { id, age_us: age, hop: seq % 64, size },
            1 => GoCastMsg::Gossip {
                ids: ids.iter().map(|&(o, s, a)| (MsgId::new(NodeId::new(o), s), a)).collect(),
                members: vec![(NodeId::new(origin), coords)],
                coords,
                degrees,
            },
            2 => GoCastMsg::PullRequest {
                ids: ids.iter().map(|&(o, s, _)| MsgId::new(NodeId::new(o), s)).collect(),
            },
            3 => GoCastMsg::Pong {
                kind: ProbeKind::Landmark((seq % 16) as u16),
                sent_at_us: age,
                degrees,
                max_nearby_rtt_us: age * 2,
                coords,
            },
            4 => GoCastMsg::LinkRequest {
                kind: if seq % 2 == 0 { LinkKind::Random } else { LinkKind::Nearby },
                rtt_us: (age % 2 == 0).then_some(age),
                degrees,
            },
            _ => GoCastMsg::TreeAd {
                root: NodeId::new(origin),
                epoch: seq,
                seq: seq / 2,
                dist_us: age,
            },
        };
        let bytes = gocast::encode(&msg);
        prop_assert_eq!(gocast::decode(&bytes).unwrap(), msg.clone());
        let payload = match &msg {
            GoCastMsg::Data { size, .. } => *size,
            _ => 0,
        };
        prop_assert_eq!(
            msg.wire_size(),
            HEADER_BYTES + bytes.len() as u32 + payload,
            "accounted size must equal encoded size"
        );
    }

    #[test]
    fn codec_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Hostile datagrams must produce an error, never a panic or an
        // absurd allocation.
        let _ = gocast::decode(&bytes);
    }

    #[test]
    fn codec_rejects_every_truncation(
        seq in 0u32..100,
        rtts in proptest::collection::vec(0u64..100_000, 0..6),
    ) {
        let msg = GoCastMsg::Pong {
            kind: ProbeKind::Candidate,
            sent_at_us: seq as u64 * 17,
            degrees: DegreeInfo { d_rand: 1, d_near: 5, t_rand: 1, t_near: 5 },
            max_nearby_rtt_us: 12345,
            coords: LandmarkVector::from_rtts(rtts.iter().map(|&v| Duration::from_micros(v))),
        };
        let bytes = gocast::encode(&msg);
        for cut in 0..bytes.len() {
            prop_assert!(gocast::decode(&bytes[..cut]).is_err());
        }
    }

    // ------------------------------------------------------------------
    // Landmark estimation: triangle-bound midpoints are symmetric and
    // respect the bounds.
    // ------------------------------------------------------------------

    // ------------------------------------------------------------------
    // Streaming observability: the online DeliveryTracker must agree with
    // the post-hoc VecRecorder + analysis pipeline on the same seeded run.
    // ------------------------------------------------------------------

    #[test]
    fn streaming_tracker_matches_post_hoc_pipeline(seed in 0u64..6, messages in 1u32..4) {
        use gocast::{GoCastCommand, GoCastConfig, GoCastEvent, GoCastNode};
        use gocast_analysis::{DeliveryTracker};
        use gocast_sim::{Recorder, SimBuilder, VecRecorder};
        use std::collections::HashMap;

        // One run, two recorders fed the identical event stream via the
        // tuple combinator: a streaming tracker and a full buffer.
        let n = 16usize;
        let net = synthetic_king(
            n,
            &SyntheticKingConfig { sites: 32, seed: seed ^ 0xABCD, ..Default::default() },
        );
        let mut boot = gocast::bootstrap_random_graph(n, 3, seed);
        let mut sim = SimBuilder::new(net)
            .seed(seed)
            .build_with(
                (DeliveryTracker::new(), VecRecorder::<GoCastEvent>::new()),
                |id| {
                    let (links, members) = boot(id);
                    GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
                },
            );
        sim.run_until(SimTime::from_secs(6));
        for i in 0..messages {
            sim.schedule_command(
                sim.now() + Duration::from_millis(200 * i as u64),
                NodeId::new(i * 5 % n as u32),
                GoCastCommand::Multicast,
            );
        }
        sim.run_for(Duration::from_secs(5));
        let live: Vec<NodeId> = sim.alive_nodes().collect();
        let (tracker, buffer) = sim.into_recorder();

        // Post-hoc pipeline 1: replay the buffered stream into a fresh
        // tracker — every aggregate must match the live one exactly.
        let mut replayed = DeliveryTracker::new();
        for (t, node, ev) in &buffer.events {
            replayed.record(*t, *node, ev.clone());
        }
        prop_assert_eq!(tracker.injected(), replayed.injected());
        prop_assert_eq!(tracker.delivered(), replayed.delivered());
        prop_assert_eq!(tracker.redundant(), replayed.redundant());
        prop_assert_eq!(tracker.pulls(), replayed.pulls());
        prop_assert_eq!(tracker.tree_fraction(), replayed.tree_fraction());
        let (live_cdf, live_inc) = tracker.per_node_average_delays(messages as u64, &live);
        let (rep_cdf, rep_inc) = replayed.per_node_average_delays(messages as u64, &live);
        prop_assert_eq!(live_inc, rep_inc);
        prop_assert_eq!(live_cdf.len(), rep_cdf.len());
        if !live_cdf.is_empty() {
            prop_assert_eq!(live_cdf.mean(), rep_cdf.mean());
            for i in 0..=10 {
                let p = i as f64 / 10.0;
                prop_assert_eq!(live_cdf.percentile(p), rep_cdf.percentile(p));
            }
        }

        // Post-hoc pipeline 2: fold the buffer by hand into the exact
        // all-delays distribution and compare against the streaming
        // histogram: len/mean/min/max exact, percentiles within the
        // histogram's documented resolution.
        let mut inject: HashMap<gocast::MsgId, SimTime> = HashMap::new();
        let mut delays = Vec::new();
        for (t, _, ev) in &buffer.events {
            match ev {
                GoCastEvent::Injected { id } => {
                    inject.insert(*id, *t);
                }
                GoCastEvent::Delivered { id, .. } => {
                    if let Some(&t0) = inject.get(id) {
                        delays.push(t.saturating_since(t0));
                    }
                }
                _ => {}
            }
        }
        let hist = tracker.delay_histogram();
        prop_assert_eq!(hist.len(), delays.len());
        if delays.is_empty() {
            prop_assert!(hist.is_empty());
        } else {
            let exact = Cdf::from_durations(delays);
            prop_assert_eq!(hist.mean(), exact.mean());
            prop_assert_eq!(hist.min(), exact.min());
            prop_assert_eq!(hist.max(), exact.max());
            for p in [0.1, 0.5, 0.9, 0.99] {
                let e = exact.percentile(p).as_secs_f64();
                let h = hist.percentile(p).as_secs_f64();
                prop_assert!(
                    (h - e).abs() <= e * 0.04 + 1e-7,
                    "p{} diverged: streaming {h}, exact {e}", p
                );
            }
        }
    }

    #[test]
    fn landmark_estimates_are_symmetric_and_bounded(
        a in proptest::collection::vec(0u64..400_000, 1..8),
        b in proptest::collection::vec(0u64..400_000, 1..8),
    ) {
        let va = LandmarkVector::from_rtts(a.iter().map(|&v| Duration::from_micros(v)));
        let vb = LandmarkVector::from_rtts(b.iter().map(|&v| Duration::from_micros(v)));
        let ab = va.estimate_rtt(&vb);
        prop_assert_eq!(ab, vb.estimate_rtt(&va));
        if let Some(est) = ab {
            let shared = a.len().min(b.len());
            let lower = (0..shared).map(|i| a[i].abs_diff(b[i])).max().unwrap();
            let upper = (0..shared).map(|i| a[i] + b[i]).min().unwrap();
            let est_us = est.as_micros() as u64;
            if upper >= lower {
                prop_assert!(est_us >= lower && est_us <= upper, "estimate within triangle bounds");
            }
        }
    }
}
