//! Integration-test crate for the GoCast workspace.
//!
//! The tests live in `tests/tests/`; this library only hosts shared
//! helpers for them.

#![warn(missing_docs)]

use std::time::Duration;

use gocast::{GoCastConfig, GoCastEvent, GoCastNode};
use gocast_analysis::MetricsRecorder;
use gocast_net::{synthetic_king, SyntheticKingConfig};
use gocast_sim::{Sim, SimBuilder, SimTime};

/// Builds a warmed-up GoCast simulation at small scale on a synthetic
/// Internet: `n` nodes, adapted for `warmup_secs` seconds.
pub fn warmed_gocast(
    n: usize,
    seed: u64,
    cfg: GoCastConfig,
    warmup_secs: u64,
) -> Sim<GoCastNode, MetricsRecorder> {
    let net = synthetic_king(
        n,
        &SyntheticKingConfig {
            sites: n.max(32),
            seed: seed ^ 0xABCD,
            ..Default::default()
        },
    );
    let mut boot = gocast::bootstrap_random_graph(n, cfg.c_degree() / 2, seed);
    let mut sim = SimBuilder::new(net)
        .seed(seed)
        .build_with(MetricsRecorder::new(), |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, cfg.clone(), links, members)
        });
    sim.run_until(SimTime::ZERO + Duration::from_secs(warmup_secs));
    sim
}

/// Counts recorded deliveries.
pub fn delivered(sim: &Sim<GoCastNode, MetricsRecorder>) -> u64 {
    sim.recorder().delivered()
}

/// Re-exported event type for test assertions.
pub type Event = GoCastEvent;
